//! Fleet-mode simulation: the epoch barrier as a message exchange between
//! OS processes.
//!
//! The in-process engine (`machine/par.rs`) splits the machine into
//! shared-nothing worker lanes and coordinates them with an
//! [`EpochCoordinator`] over a thread barrier. This module runs the *same*
//! coordinator over **chip processes**: `Machine::set_fleet_chips(N)` makes
//! the next `run_to_quiescence` call fork N child processes, each owning a
//! contiguous slice of the workers (its partition workers, their
//! [`Dram::bank`] banks, and their table state, all inherited
//! copy-on-write), while the parent keeps the coordinator role: the NoC,
//! the [`EpochMerger`], the host DRAM view, and the trace sink.
//!
//! # Protocol
//!
//! One run is one `Sync` handshake followed by one epoch *phase*:
//!
//! ```text
//! coord -> chip  Sync     host write journal + queued submits + table brks
//! chip  -> coord SyncAck  per-lane next-event/quiescence snapshot
//! coord -> chip  Phase    the chip's detached EpochLinks
//! coord -> chip  Round    per-lane horizons + routed deliveries + journal
//! chip  -> coord RoundOut per-lane exit hints + staged traffic + trace
//! ...            (Round/RoundOut repeats, driven by the EpochCoordinator)
//! coord -> chip  Finish   common top-up cycle
//! chip  -> coord PhaseEnd links + stats slices + lane activity
//! ```
//!
//! Everything crossing the boundary uses the [`Wire`] codec; the transport
//! is either a pair of shared-memory SPSC rings per chip (default) or a
//! Unix socket pair (`BIONICDB_FLEET_TRANSPORT=socket`).
//!
//! # Bit-identity argument
//!
//! The scheduling brain is literally shared: both engines drive
//! [`EpochCoordinator::next_step`], and a chip executes a scheduled lane
//! with the same `run_round`/`finish_lane` the in-process threads use. The
//! remaining differences are plumbing, each preserved exactly:
//!
//! * **Functional memory.** Every functional write funnels through
//!   [`Dram::host_write`], so an armed write journal captures the complete
//!   mutation stream of a view. Chips journal their banks and ship the
//!   entries with each `RoundOut`; the coordinator applies them to its
//!   host view (keeping host reads, block status checks, and the crash
//!   hook's durable snapshot current) and relays them to the *other*
//!   chips with the next message they receive. Host-side writes between
//!   runs (loaders, block population, `resubmit`'s status reset) journal
//!   on the coordinator and replay to every chip at the next `Sync`.
//!   Relayed application order is deterministic (chip order within a
//!   round), and no two processes ever race on the same byte within a
//!   round: cross-worker accesses to the same data are separated by at
//!   least one NoC crossing, which the epoch horizons already order.
//! * **Merge order.** A chip folds its scheduled lanes' traffic and trace
//!   in ascending lane order; the coordinator folds chip replies in
//!   ascending chip order. Both merges are the order-preserving ones the
//!   in-process combining tree uses, so the result equals the serial
//!   concatenation either way.
//! * **Statistics.** Worker/bank counters live in the chip processes; the
//!   coordinator keeps a [`WorkerSlice`] cache per worker, refreshed from
//!   each `PhaseEnd`, and the `Machine` accessors consult it in fleet
//!   mode. Table heap brks travel both ways (chip allocations at
//!   `PhaseEnd`, host loader allocations at `Sync`) so address allocation
//!   never diverges.
//! * **The serial mop-up.** `run_to_quiescence_limit`'s serial loop allows
//!   exactly one fast-forward step past the epoch cap and ticks the crash
//!   cycle itself; [`Machine::run_fleet_to_quiescence`] mirrors both by
//!   extending the coordinator's cap once (running the post-cap cycle as
//!   one more round) and by finishing every lane *through* the crash
//!   cycle before latching the crash.
//!
//! `scripts/check.sh`'s `fleetcheck` gate asserts the contract end to end:
//! full `MachineReport` JSON from a fleet run diffs byte-for-byte against
//! the in-process engine on fixed seeds.
//!
//! # Process-model caveats
//!
//! Forking is only sound from a single-threaded process, so fleet mode must
//! be engaged from single-threaded binaries (the in-process engine joins
//! its scoped threads before returning, so alternating engines in one
//! process is fine — but `cargo test`'s multi-threaded harness is not).
//! Chips are forked lazily on the first fleet run, terminate on `Shutdown`
//! (or `_exit(101)` on a chip-side panic, which the coordinator surfaces as
//! a hung-protocol panic rather than silent divergence), and are reaped by
//! [`Fleet`]'s `Drop`.

use std::io::{Read as _, Write as _};
use std::ops::Range;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};

use bionicdb_fpga::dram::WriteJournal;
use bionicdb_fpga::obs::LatencyHistogram;
use bionicdb_fpga::stats::StageStats;
use bionicdb_fpga::wire::{decode, encode, Reader, Wire};
use bionicdb_fpga::{DramStats, PortStats, TxnEvent};
use bionicdb_noc::{EpochLink, EpochMerger, StagedBatch};
use bionicdb_softcore::core::SoftcoreObs;
use bionicdb_softcore::SoftcoreStats;

use super::par::{
    finish_lane, merge_traces, run_round, EpochCoordinator, Lane, LaneOut, RoundEntry, Step,
};
use super::Machine;
use crate::worker::WorkerStats;

// ---------------------------------------------------------------------------
// raw process/memory syscalls
//
// The container bakes in no `libc` crate, so the few POSIX calls fleet mode
// needs resolve directly against the C runtime every Rust binary already
// links. This is the only module in the crate allowed to override the
// crate-level `deny(unsafe_code)`.

#[allow(unsafe_code)]
mod sys {
    use core::ffi::c_void;

    mod c {
        use core::ffi::c_void;
        extern "C" {
            pub fn fork() -> i32;
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                off: i64,
            ) -> *mut c_void;
            pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
            pub fn kill(pid: i32, sig: i32) -> i32;
            pub fn _exit(code: i32) -> !;
            pub fn sched_yield() -> i32;
        }
    }

    /// `fork(2)`: returns the child pid in the parent, 0 in the child.
    pub fn fork() -> i32 {
        unsafe { c::fork() }
    }

    /// A zero-initialized `MAP_SHARED | MAP_ANONYMOUS` mapping: the one
    /// kind of memory that stays *physically* shared across `fork`, which
    /// is what makes the ring buffers a cross-process channel.
    pub fn map_shared_zeroed(len: usize) -> *mut u8 {
        const PROT_READ: i32 = 1;
        const PROT_WRITE: i32 = 2;
        const MAP_SHARED: i32 = 0x01;
        const MAP_ANONYMOUS: i32 = 0x20;
        let p = unsafe {
            c::mmap(
                std::ptr::null_mut::<c_void>(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(
            !p.is_null() && p as isize != -1,
            "mmap(MAP_SHARED | MAP_ANONYMOUS, {len}) failed"
        );
        p.cast()
    }

    /// Blocking `waitpid(2)`, status discarded (the protocol, not the exit
    /// code, carries chip failures).
    pub fn waitpid(pid: i32) {
        let mut status = 0i32;
        unsafe { c::waitpid(pid, &mut status, 0) };
    }

    /// `kill(2)` with SIGKILL — last-resort reaping when a shutdown message
    /// cannot be delivered.
    pub fn kill9(pid: i32) {
        unsafe { c::kill(pid, 9) };
    }

    /// `_exit(2)`: terminate the chip process without running destructors —
    /// a forked child must never unwind into the parent's drop glue.
    pub fn exit(code: i32) -> ! {
        unsafe { c::_exit(code) }
    }

    /// `sched_yield(2)`: the ring's wait primitive; keeps single-core hosts
    /// (CI containers) making progress instead of burning a timeslice.
    pub fn yield_now() {
        unsafe { c::sched_yield() };
    }
}

// ---------------------------------------------------------------------------
// shared-memory SPSC ring

#[allow(unsafe_code)]
mod shm {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Ring capacity. Must be a power of two (offsets are masked). Messages
    /// larger than the ring are streamed through it in chunks.
    pub(super) const RING_CAP: usize = 1 << 20;
    /// Header: head and tail counters on separate cache lines.
    const HDR: usize = 128;

    /// One single-producer single-consumer byte ring in a `MAP_SHARED`
    /// mapping: `[head: AtomicU64][pad][tail: AtomicU64][pad][buf]`. The
    /// producer owns `tail`, the consumer owns `head`; both counters grow
    /// monotonically and are masked into the buffer. Created before `fork`,
    /// so parent and child address the same physical pages.
    #[derive(Clone, Copy)]
    pub(super) struct Ring {
        base: *mut u8,
    }

    // The mapping is plain shared memory coordinated by the atomics below.
    unsafe impl Send for Ring {}

    impl Ring {
        pub fn alloc() -> Ring {
            Ring {
                base: super::sys::map_shared_zeroed(HDR + RING_CAP),
            }
        }

        fn head(&self) -> &AtomicU64 {
            unsafe { &*self.base.cast::<AtomicU64>() }
        }

        fn tail(&self) -> &AtomicU64 {
            unsafe { &*self.base.add(64).cast::<AtomicU64>() }
        }

        /// Producer side: append `data`, spinning (with `sched_yield`) while
        /// the ring is full. Chunked, so messages larger than the ring flow
        /// through as the consumer drains.
        pub fn push(&self, mut data: &[u8]) {
            while !data.is_empty() {
                let tail = self.tail().load(Ordering::Relaxed);
                let head = self.head().load(Ordering::Acquire);
                let free = RING_CAP - tail.wrapping_sub(head) as usize;
                if free == 0 {
                    super::sys::yield_now();
                    continue;
                }
                let n = data.len().min(free);
                let off = tail as usize & (RING_CAP - 1);
                let first = n.min(RING_CAP - off);
                unsafe {
                    std::ptr::copy_nonoverlapping(data.as_ptr(), self.buf(off), first);
                    if n > first {
                        std::ptr::copy_nonoverlapping(
                            data.as_ptr().add(first),
                            self.buf(0),
                            n - first,
                        );
                    }
                }
                self.tail().store(tail.wrapping_add(n as u64), Ordering::Release);
                data = &data[n..];
            }
        }

        /// Producer side, bounded: push `data` only if it fits whole within
        /// `max_spins` yields. Used by shutdown paths that must not hang on
        /// a dead consumer.
        pub fn try_push(&self, data: &[u8], max_spins: usize) -> bool {
            assert!(data.len() <= RING_CAP, "try_push frame exceeds ring");
            for _ in 0..max_spins {
                let tail = self.tail().load(Ordering::Relaxed);
                let head = self.head().load(Ordering::Acquire);
                let free = RING_CAP - tail.wrapping_sub(head) as usize;
                if free >= data.len() {
                    let off = tail as usize & (RING_CAP - 1);
                    let first = data.len().min(RING_CAP - off);
                    unsafe {
                        std::ptr::copy_nonoverlapping(data.as_ptr(), self.buf(off), first);
                        if data.len() > first {
                            std::ptr::copy_nonoverlapping(
                                data.as_ptr().add(first),
                                self.buf(0),
                                data.len() - first,
                            );
                        }
                    }
                    self.tail()
                        .store(tail.wrapping_add(data.len() as u64), Ordering::Release);
                    return true;
                }
                super::sys::yield_now();
            }
            false
        }

        /// Consumer side: fill `out` completely, spinning while empty.
        pub fn pop_into(&self, out: &mut [u8]) {
            let mut filled = 0;
            while filled < out.len() {
                let head = self.head().load(Ordering::Relaxed);
                let tail = self.tail().load(Ordering::Acquire);
                let avail = tail.wrapping_sub(head) as usize;
                if avail == 0 {
                    super::sys::yield_now();
                    continue;
                }
                let n = (out.len() - filled).min(avail);
                let off = head as usize & (RING_CAP - 1);
                let first = n.min(RING_CAP - off);
                unsafe {
                    std::ptr::copy_nonoverlapping(self.buf(off), out.as_mut_ptr().add(filled), first);
                    if n > first {
                        std::ptr::copy_nonoverlapping(
                            self.buf(0),
                            out.as_mut_ptr().add(filled + first),
                            n - first,
                        );
                    }
                }
                self.head().store(head.wrapping_add(n as u64), Ordering::Release);
                filled += n;
            }
        }

        fn buf(&self, off: usize) -> *mut u8 {
            unsafe { self.base.add(HDR + off) }
        }
    }
}

// ---------------------------------------------------------------------------
// channel: length-prefixed frames over rings or a socket pair

/// One end of a coordinator<->chip channel. Frames are `u32` (LE) length
/// prefixed [`Wire`] messages.
enum Chan {
    /// Two SPSC rings (one per direction) in pre-fork shared mappings.
    Shm { tx: shm::Ring, rx: shm::Ring },
    /// A `socketpair(2)` stream — the fallback transport, selected with
    /// `BIONICDB_FLEET_TRANSPORT=socket`.
    Socket(UnixStream),
}

impl Chan {
    /// Build a connected (coordinator, chip) pair. Must be called before
    /// `fork` so both processes share the underlying transport.
    fn pair() -> (Chan, Chan) {
        match std::env::var("BIONICDB_FLEET_TRANSPORT").as_deref() {
            Ok("socket") => {
                let (a, b) = UnixStream::pair().expect("socketpair for fleet transport");
                (Chan::Socket(a), Chan::Socket(b))
            }
            Ok("shm") | Err(_) => {
                let ab = shm::Ring::alloc();
                let ba = shm::Ring::alloc();
                (Chan::Shm { tx: ab, rx: ba }, Chan::Shm { tx: ba, rx: ab })
            }
            Ok(other) => panic!("unknown BIONICDB_FLEET_TRANSPORT {other:?} (shm|socket)"),
        }
    }

    /// Send one frame, blocking until fully written.
    fn send(&mut self, msg: &[u8]) {
        let len = u32::try_from(msg.len()).expect("fleet message fits in u32");
        match self {
            Chan::Shm { tx, .. } => {
                tx.push(&len.to_le_bytes());
                tx.push(msg);
            }
            Chan::Socket(s) => {
                s.write_all(&len.to_le_bytes()).expect("fleet socket send");
                s.write_all(msg).expect("fleet socket send");
            }
        }
    }

    /// Receive one frame, blocking until fully read.
    fn recv(&mut self) -> Vec<u8> {
        let mut hdr = [0u8; 4];
        match self {
            Chan::Shm { rx, .. } => {
                rx.pop_into(&mut hdr);
                let mut buf = vec![0u8; u32::from_le_bytes(hdr) as usize];
                rx.pop_into(&mut buf);
                buf
            }
            Chan::Socket(s) => {
                s.read_exact(&mut hdr).expect("fleet socket recv");
                let mut buf = vec![0u8; u32::from_le_bytes(hdr) as usize];
                s.read_exact(&mut buf).expect("fleet socket recv");
                buf
            }
        }
    }

    /// Best-effort send for shutdown paths: never blocks indefinitely,
    /// never panics. Returns false when the frame could not be delivered.
    fn send_best_effort(&mut self, msg: &[u8]) -> bool {
        let len = (msg.len() as u32).to_le_bytes();
        match self {
            Chan::Shm { tx, .. } => {
                let mut frame = Vec::with_capacity(4 + msg.len());
                frame.extend_from_slice(&len);
                frame.extend_from_slice(msg);
                tx.try_push(&frame, 10_000)
            }
            Chan::Socket(s) => s.write_all(&len).is_ok() && s.write_all(msg).is_ok(),
        }
    }
}

// ---------------------------------------------------------------------------
// protocol messages

/// One lane's snapshot in a `SyncAck`: everything `lane_next` needs,
/// evaluated chip-side at the sync cycle.
struct LaneSync {
    worker_next: Option<u64>,
    bank_next: Option<u64>,
    buffered: bool,
    quiescent: bool,
}

/// One lane's activity counters for a finished phase (the fleet-side
/// [`super::LaneActivity`] increment; barrier idle time is not measured
/// across processes and stays 0).
struct LaneWork {
    ticks: u64,
    skips: u64,
    rounds: u64,
    epoch_len: LatencyHistogram,
}

/// Coordinator-side cache of one worker's observable state, refreshed from
/// every `PhaseEnd`. `Machine` accessors (stats, reports, quiescence)
/// consult these in fleet mode, since the live worker objects advance only
/// inside the chip processes.
pub(crate) struct WorkerSlice {
    pub(crate) softcore: SoftcoreStats,
    pub(crate) obs: SoftcoreObs,
    pub(crate) glue: WorkerStats,
    pub(crate) stages: Vec<(String, StageStats)>,
    pub(crate) bank: DramStats,
    pub(crate) ports: Vec<PortStats>,
    pub(crate) cancelled_acks: u64,
    pub(crate) quiescent: bool,
    /// Per-table heap brks — replayed onto the coordinator's `TableState`
    /// mirrors so host-side loaders keep allocating past chip inserts.
    table_brks: Vec<u64>,
}

/// Coordinator -> chip.
enum ToChip {
    /// Start-of-run handshake: the run's start cycle, every host write
    /// since the last exchange, queued client submits for this chip's
    /// workers (`(worker, block_addr, submitted_at)`), and the
    /// coordinator-side table brks per owned worker.
    Sync {
        now: u64,
        journal: WriteJournal,
        submits: Vec<(usize, u64, u64)>,
        brks: Vec<Vec<u64>>,
    },
    /// Open an epoch phase: the chip's lane slice of the detached links.
    Phase {
        now0: u64,
        tracing: bool,
        links: Vec<EpochLink>,
    },
    /// Run scheduled lanes: `(global lane, horizon, routed deliveries)`,
    /// plus writes relayed from the other processes since the last message.
    Round {
        entries: Vec<RoundEntry>,
        journal: WriteJournal,
    },
    /// Close the phase: top every lane up to `to`.
    Finish { to: u64, expect_idle: bool },
    /// Terminate the chip process.
    Shutdown,
}

/// Chip -> coordinator.
enum ToCoord {
    SyncAck {
        lanes: Vec<LaneSync>,
    },
    /// One round's results: per scheduled lane the barrier scalars, plus
    /// the chip's merged traffic, trace slice, and bank write journal.
    RoundOut {
        outs: Vec<(usize, LaneOut)>,
        batch: StagedBatch,
        trace: Vec<(u64, u32, TxnEvent)>,
        journal: WriteJournal,
    },
    PhaseEnd {
        links: Vec<EpochLink>,
        slices: Vec<WorkerSlice>,
        activity: Vec<LaneWork>,
        ticks: u64,
    },
}

impl Wire for LaneSync {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker_next.put(out);
        self.bank_next.put(out);
        self.buffered.put(out);
        self.quiescent.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        LaneSync {
            worker_next: r.get(),
            bank_next: r.get(),
            buffered: r.get(),
            quiescent: r.get(),
        }
    }
}

impl Wire for LaneWork {
    fn put(&self, out: &mut Vec<u8>) {
        self.ticks.put(out);
        self.skips.put(out);
        self.rounds.put(out);
        self.epoch_len.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        LaneWork {
            ticks: r.get(),
            skips: r.get(),
            rounds: r.get(),
            epoch_len: r.get(),
        }
    }
}

impl Wire for LaneOut {
    fn put(&self, out: &mut Vec<u8>) {
        self.hint.put(out);
        self.pos.put(out);
        self.quiescent.put(out);
        self.drained.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        LaneOut {
            hint: r.get(),
            pos: r.get(),
            quiescent: r.get(),
            drained: r.get(),
        }
    }
}

impl Wire for WorkerStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.local_requests.put(out);
        self.remote_requests.put(out);
        self.background_requests.put(out);
        self.dup_requests.put(out);
        self.dup_responses.put(out);
        self.retries_sent.put(out);
        self.retry_exhausted.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        WorkerStats {
            local_requests: r.get(),
            remote_requests: r.get(),
            background_requests: r.get(),
            dup_requests: r.get(),
            dup_responses: r.get(),
            retries_sent: r.get(),
            retry_exhausted: r.get(),
        }
    }
}

impl Wire for WorkerSlice {
    fn put(&self, out: &mut Vec<u8>) {
        self.softcore.put(out);
        self.obs.put(out);
        self.glue.put(out);
        self.stages.put(out);
        self.bank.put(out);
        self.ports.put(out);
        self.cancelled_acks.put(out);
        self.quiescent.put(out);
        self.table_brks.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        WorkerSlice {
            softcore: r.get(),
            obs: r.get(),
            glue: r.get(),
            stages: r.get(),
            bank: r.get(),
            ports: r.get(),
            cancelled_acks: r.get(),
            quiescent: r.get(),
            table_brks: r.get(),
        }
    }
}

impl Wire for ToChip {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            ToChip::Sync {
                now,
                journal,
                submits,
                brks,
            } => {
                0u8.put(out);
                now.put(out);
                journal.put(out);
                submits.put(out);
                brks.put(out);
            }
            ToChip::Phase {
                now0,
                tracing,
                links,
            } => {
                1u8.put(out);
                now0.put(out);
                tracing.put(out);
                links.put(out);
            }
            ToChip::Round { entries, journal } => {
                2u8.put(out);
                entries.put(out);
                journal.put(out);
            }
            ToChip::Finish { to, expect_idle } => {
                3u8.put(out);
                to.put(out);
                expect_idle.put(out);
            }
            ToChip::Shutdown => 4u8.put(out),
        }
    }
    fn get(r: &mut Reader<'_>) -> Self {
        match u8::get(r) {
            0 => ToChip::Sync {
                now: r.get(),
                journal: r.get(),
                submits: r.get(),
                brks: r.get(),
            },
            1 => ToChip::Phase {
                now0: r.get(),
                tracing: r.get(),
                links: r.get(),
            },
            2 => ToChip::Round {
                entries: r.get(),
                journal: r.get(),
            },
            3 => ToChip::Finish {
                to: r.get(),
                expect_idle: r.get(),
            },
            4 => ToChip::Shutdown,
            t => panic!("bad ToChip tag {t}"),
        }
    }
}

impl Wire for ToCoord {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            ToCoord::SyncAck { lanes } => {
                0u8.put(out);
                lanes.put(out);
            }
            ToCoord::RoundOut {
                outs,
                batch,
                trace,
                journal,
            } => {
                1u8.put(out);
                outs.put(out);
                batch.put(out);
                trace.put(out);
                journal.put(out);
            }
            ToCoord::PhaseEnd {
                links,
                slices,
                activity,
                ticks,
            } => {
                2u8.put(out);
                links.put(out);
                slices.put(out);
                activity.put(out);
                ticks.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Self {
        match u8::get(r) {
            0 => ToCoord::SyncAck { lanes: r.get() },
            1 => ToCoord::RoundOut {
                outs: r.get(),
                batch: r.get(),
                trace: r.get(),
                journal: r.get(),
            },
            2 => ToCoord::PhaseEnd {
                links: r.get(),
                slices: r.get(),
                activity: r.get(),
                ticks: r.get(),
            },
            t => panic!("bad ToCoord tag {t}"),
        }
    }
}

// ---------------------------------------------------------------------------
// the fleet

/// One forked chip process, as the coordinator sees it.
struct ChipHandle {
    pid: i32,
    chan: Chan,
}

/// Coordinator-side state of a spawned fleet. Lives in
/// `Machine::fleet` from the first fleet run until the machine drops.
pub(crate) struct Fleet {
    chips: Vec<ChipHandle>,
    /// Worker range owned by each chip (contiguous, covering, in order).
    ranges: Vec<Range<usize>>,
    /// Per-worker observable-state cache (see [`WorkerSlice`]).
    pub(crate) slices: Vec<WorkerSlice>,
    /// Client submits queued since the last run, `(worker, block_addr,
    /// submitted_at)` — relayed with the next `Sync`.
    pub(crate) pending_submits: Vec<(usize, u64, u64)>,
    /// Per-chip journal of writes (host-side or relayed from other chips)
    /// not yet shipped to that chip.
    outbox: Vec<WriteJournal>,
}

impl Fleet {
    fn chip_of(&self, worker: usize) -> usize {
        self.ranges
            .iter()
            .position(|r| r.contains(&worker))
            .expect("worker belongs to a chip")
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let msg = encode(&ToChip::Shutdown);
        for chip in &mut self.chips {
            if !chip.chan.send_best_effort(&msg) {
                // The chip stopped draining its ring (it died, or the
                // coordinator is unwinding mid-phase): reap it by force so
                // waitpid below cannot hang.
                sys::kill9(chip.pid);
            }
        }
        for chip in &self.chips {
            sys::waitpid(chip.pid);
        }
    }
}

impl Machine {
    /// Fork the chip processes. Called lazily by the first fleet run, so
    /// everything built before it — loaded tables, populated blocks, fault
    /// plans, trace flags — is inherited copy-on-write and needs no
    /// transfer.
    fn fleet_spawn(&mut self) {
        assert!(self.fleet.is_none(), "fleet already spawned");
        let n = self.workers.len();
        let nchips = self.fleet_chips.min(n);
        assert!(nchips > 1, "fleet mode needs at least two chips");
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(nchips);
        let (per, extra) = (n / nchips, n % nchips);
        let mut lo = 0;
        for c in 0..nchips {
            let len = per + usize::from(c < extra);
            ranges.push(lo..lo + len);
            lo += len;
        }
        let mut chips = Vec::with_capacity(nchips);
        for range in &ranges {
            let (parent, mut child) = Chan::pair();
            let pid = sys::fork();
            assert!(pid >= 0, "fork failed");
            if pid == 0 {
                // ---- chip process: serve until Shutdown, then _exit ----
                let range = range.clone();
                let code = match catch_unwind(AssertUnwindSafe(|| {
                    self.fleet_chip_serve(range, &mut child);
                })) {
                    Ok(()) => 0,
                    Err(_) => 101, // the panic hook already wrote stderr
                };
                sys::exit(code);
            }
            chips.push(ChipHandle { pid, chan: parent });
        }
        // From here on the coordinator journals its host writes for relay.
        self.dram.set_write_journal(true);
        let slices = (0..n).map(|w| self.capture_worker_slice(w)).collect();
        let outbox = (0..nchips).map(|_| WriteJournal::new()).collect();
        self.fleet = Some(Fleet {
            chips,
            ranges,
            slices,
            pending_submits: Vec::new(),
            outbox,
        });
    }

    /// Snapshot one worker's observable state. Used by the coordinator at
    /// spawn (pre-fork state is still truthful parent-side) and by chips at
    /// every `PhaseEnd`.
    fn capture_worker_slice(&self, w: usize) -> WorkerSlice {
        let worker = &self.workers[w];
        WorkerSlice {
            softcore: worker.softcore.stats(),
            obs: worker.softcore.obs().clone(),
            glue: worker.stats(),
            stages: worker.coproc.stage_report(),
            bank: self.banks[w].stats(),
            ports: self.banks[w].port_stats().to_vec(),
            cancelled_acks: self.banks[w].cancelled_acks(),
            quiescent: worker.is_quiescent(),
            table_brks: self.partitions[w]
                .tables
                .iter()
                .map(|t| t.heap.brk())
                .collect(),
        }
    }

    /// The chip process's service loop: answer `Sync`, execute phases,
    /// return on `Shutdown`.
    fn fleet_chip_serve(&mut self, range: Range<usize>, chan: &mut Chan) {
        // Chips journal their banks (the timed mutation stream travels to
        // the coordinator); the inherited host-view journal state must not
        // double-capture relayed writes.
        for w in range.clone() {
            self.banks[w].set_write_journal(true);
        }
        self.dram.set_write_journal(false);
        loop {
            match decode::<ToChip>(&chan.recv()) {
                ToChip::Sync {
                    now,
                    journal,
                    submits,
                    brks,
                } => {
                    self.dram.apply_write_journal(&journal);
                    self.now = now;
                    for (k, w) in range.clone().enumerate() {
                        for (t, &brk) in brks[k].iter().enumerate() {
                            self.partitions[w].tables[t].heap.set_brk(brk);
                        }
                    }
                    for (w, addr, at) in submits {
                        debug_assert!(range.contains(&w), "submit routed to wrong chip");
                        self.workers[w].softcore.submit_at(addr, at);
                    }
                    let lanes: Vec<LaneSync> = range
                        .clone()
                        .map(|w| LaneSync {
                            worker_next: self.workers[w].next_event(now),
                            bank_next: self.banks[w].next_event(),
                            buffered: self.banks[w].has_buffered_responses(),
                            quiescent: self.workers[w].is_quiescent(),
                        })
                        .collect();
                    chan.send(&encode(&ToCoord::SyncAck { lanes }));
                }
                ToChip::Phase {
                    now0,
                    tracing,
                    links,
                } => self.fleet_chip_phase(&range, now0, tracing, links, chan),
                ToChip::Shutdown => return,
                ToChip::Round { .. } | ToChip::Finish { .. } => {
                    panic!("fleet chip: phase message outside a phase")
                }
            }
        }
    }

    /// Execute one epoch phase chip-side: build the owned lanes, run every
    /// `Round` the coordinator schedules (lanes in ascending order — the
    /// serial merge order), and close with `PhaseEnd`.
    fn fleet_chip_phase(
        &mut self,
        range: &Range<usize>,
        now0: u64,
        tracing: bool,
        links: Vec<EpochLink>,
        chan: &mut Chan,
    ) {
        let base = range.start;
        let (links, activity, total_ticks) = {
            let Machine {
                workers,
                banks,
                partitions,
                dram,
                cat,
                ..
            } = self;
            let mut links = links;
            let mut lanes: Vec<Lane<'_>> = workers[range.clone()]
                .iter_mut()
                .zip(banks[range.clone()].iter_mut())
                .zip(partitions[range.clone()].iter_mut())
                .enumerate()
                .map(|(k, ((worker, bank), part))| Lane {
                    idx: base + k,
                    worker,
                    bank,
                    tables: &mut part.tables,
                    pos: now0,
                    ticks: 0,
                    skips: 0,
                    rounds: 0,
                    epoch_len: LatencyHistogram::new(),
                    trace: Vec::new(),
                })
                .collect();
            assert_eq!(lanes.len(), links.len(), "phase link slice mismatch");
            loop {
                match decode::<ToChip>(&chan.recv()) {
                    ToChip::Round { entries, journal } => {
                        dram.apply_write_journal(&journal);
                        let mut outs = Vec::with_capacity(entries.len());
                        let mut batch = StagedBatch::empty();
                        let mut trace: Vec<(u64, u32, TxnEvent)> = Vec::new();
                        let mut journal_out = WriteJournal::new();
                        for (g, horizon, pending) in entries {
                            let k = g - base;
                            let lane = &mut lanes[k];
                            let link = &mut links[k];
                            link.begin_round(pending);
                            lane.rounds += 1;
                            lane.epoch_len.record(horizon - lane.pos);
                            let hint = run_round(lane, link, horizon, cat, tracing);
                            let traffic = link.harvest();
                            let drained = traffic.queue_drained();
                            let lane_id = lane.idx as u32;
                            let lane_trace: Vec<(u64, u32, TxnEvent)> = lane
                                .trace
                                .drain(..)
                                .map(|(c, ev)| (c, lane_id, ev))
                                .collect();
                            trace = merge_traces(trace, lane_trace);
                            batch = StagedBatch::merge(batch, StagedBatch::from_traffic(traffic));
                            journal_out.extend(lane.bank.take_write_journal());
                            outs.push((
                                g,
                                LaneOut {
                                    hint,
                                    pos: lane.pos,
                                    quiescent: lane.worker.is_quiescent(),
                                    drained,
                                },
                            ));
                        }
                        chan.send(&encode(&ToCoord::RoundOut {
                            outs,
                            batch,
                            trace,
                            journal: journal_out,
                        }));
                    }
                    ToChip::Finish { to, expect_idle } => {
                        for (lane, link) in lanes.iter_mut().zip(&links) {
                            finish_lane(lane, link, to, expect_idle);
                        }
                        let activity: Vec<LaneWork> = lanes
                            .iter()
                            .map(|l| LaneWork {
                                ticks: l.ticks,
                                skips: l.skips,
                                rounds: l.rounds,
                                epoch_len: l.epoch_len,
                            })
                            .collect();
                        let total = lanes.iter().map(|l| l.ticks).sum::<u64>();
                        break (links, activity, total);
                    }
                    _ => panic!("fleet chip: unexpected message inside a phase"),
                }
            }
        };
        let slices: Vec<WorkerSlice> = range
            .clone()
            .map(|w| self.capture_worker_slice(w))
            .collect();
        chan.send(&encode(&ToCoord::PhaseEnd {
            links,
            slices,
            activity,
            ticks: total_ticks,
        }));
    }

    /// The coordinator side of one fleet run: sync the chips, drive one
    /// epoch phase with the shared [`EpochCoordinator`], absorb the
    /// results, and apply the serial loop's uniform exit conditions
    /// (quiescence, crash, limit). Bit-identical to
    /// [`Machine::run_to_quiescence_limit`] on the in-process engines.
    pub(crate) fn run_fleet_to_quiescence(&mut self, limit: u64) -> u64 {
        if self.fleet.is_none() {
            self.fleet_spawn();
        }
        let start = self.now;
        let n = self.workers.len();
        // Take the fleet out of `self` for the duration: the run needs the
        // machine's components and the fleet's channels simultaneously.
        // (On a coordinator panic the local is dropped, which shuts the
        // chips down.)
        let mut fleet = self.fleet.take().expect("fleet spawned");
        let nchips = fleet.chips.len();

        // ---- Sync: ship host writes, loader brks, and queued submits ----
        let host_journal = self.dram.take_write_journal();
        let submits = std::mem::take(&mut fleet.pending_submits);
        for c in 0..nchips {
            let mut journal = std::mem::take(&mut fleet.outbox[c]);
            journal.extend(host_journal.iter().cloned());
            let subs: Vec<(usize, u64, u64)> = submits
                .iter()
                .copied()
                .filter(|&(w, _, _)| fleet.ranges[c].contains(&w))
                .collect();
            let brks: Vec<Vec<u64>> = fleet.ranges[c]
                .clone()
                .map(|w| {
                    self.partitions[w]
                        .tables
                        .iter()
                        .map(|t| t.heap.brk())
                        .collect()
                })
                .collect();
            fleet.chips[c].chan.send(&encode(&ToChip::Sync {
                now: start,
                journal,
                submits: subs,
                brks,
            }));
        }
        let mut acks: Vec<LaneSync> = Vec::with_capacity(n);
        for c in 0..nchips {
            match decode::<ToCoord>(&fleet.chips[c].chan.recv()) {
                ToCoord::SyncAck { lanes } => acks.extend(lanes),
                _ => panic!("fleet: expected SyncAck"),
            }
        }
        assert_eq!(acks.len(), n, "every lane reports at sync");
        if self.noc.is_idle() && acks.iter().all(|a| a.quiescent) {
            // Nothing to do; the slices from the last phase are current.
            self.fleet = Some(fleet);
            return 0;
        }
        assert!(limit > 0, "machine did not quiesce within 0 cycles");

        // ---- phase setup (mirrors `run_epochs`) ----
        let raw_cap = start.saturating_add(limit) - 1;
        let mut cap = raw_cap;
        if let Some(c) = self.fault_plan.crash_at {
            assert!(c > start, "fleet engine needs the crash cycle ahead of the run");
            // Unlike the in-process engine (which leaves the crash cycle to
            // the serial loop), the fleet phase runs *through* cycle `c`
            // and latches the crash itself.
            cap = cap.min(c);
        }
        let tracing = self.trace_sink.enabled();
        let lmin = self.noc.min_hop_latency();
        let mut merger = EpochMerger::new(&self.noc);
        let links: Vec<EpochLink> = self.noc.begin_epoch();
        let init: Vec<(Option<u64>, bool, bool)> = (0..n)
            .map(|i| {
                // `lane_next`, evaluated from the SyncAck snapshot.
                let a = &acks[i];
                let link_next = links[i].next_ready(start);
                let hint = if link_next.is_none() && a.quiescent {
                    None
                } else if a.buffered {
                    Some(start + 1)
                } else {
                    let mut best = a.worker_next;
                    if let Some(t) = a.bank_next {
                        let t = t.max(start + 1);
                        best = Some(best.map_or(t, |b| b.min(t)));
                    }
                    if let Some(t) = link_next {
                        best = Some(best.map_or(t, |b| b.min(t)));
                    }
                    best
                };
                (hint, link_next.is_none(), a.quiescent)
            })
            .collect();
        let mut iter = links.into_iter();
        for c in 0..nchips {
            let chunk: Vec<EpochLink> = iter.by_ref().take(fleet.ranges[c].len()).collect();
            fleet.chips[c].chan.send(&encode(&ToChip::Phase {
                now0: start,
                tracing,
                links: chunk,
            }));
        }
        let mut coord = EpochCoordinator::new(self.lookahead_mode, cap, lmin, start, init);
        let mut trace_buf: Vec<(u64, u32, TxnEvent)> = Vec::new();
        let mut rounds_done = 0u64;
        // Whether the serial mop-up's one post-cap fast-forward step has
        // been spent (see the exit arm below).
        let mut extended = false;

        // ---- the epoch loop ----
        let (to, expect_idle) = loop {
            match coord.next_step(&mut merger, &mut self.noc) {
                Step::Round { lanes, gvt } => {
                    if tracing {
                        let cut = trace_buf.partition_point(|&(c, _, _)| c < gvt);
                        for (_, _, ev) in trace_buf.drain(..cut) {
                            self.trace_sink.txn(&ev);
                        }
                    }
                    let mut per_chip: Vec<Vec<RoundEntry>> =
                        (0..nchips).map(|_| Vec::new()).collect();
                    for entry in lanes {
                        per_chip[fleet.chip_of(entry.0)].push(entry);
                    }
                    let active: Vec<usize> =
                        (0..nchips).filter(|&c| !per_chip[c].is_empty()).collect();
                    for &c in &active {
                        let journal = std::mem::take(&mut fleet.outbox[c]);
                        fleet.chips[c].chan.send(&encode(&ToChip::Round {
                            entries: std::mem::take(&mut per_chip[c]),
                            journal,
                        }));
                    }
                    let mut batch = StagedBatch::empty();
                    let mut round_trace: Vec<(u64, u32, TxnEvent)> = Vec::new();
                    for &c in &active {
                        match decode::<ToCoord>(&fleet.chips[c].chan.recv()) {
                            ToCoord::RoundOut {
                                outs,
                                batch: b,
                                trace,
                                journal,
                            } => {
                                self.dram.apply_write_journal(&journal);
                                for (other, outbox) in fleet.outbox.iter_mut().enumerate() {
                                    if other != c {
                                        outbox.extend(journal.iter().cloned());
                                    }
                                }
                                for (i, out) in outs {
                                    coord.note_out(i, &out);
                                }
                                batch = StagedBatch::merge(batch, b);
                                round_trace = merge_traces(round_trace, trace);
                            }
                            _ => panic!("fleet: expected RoundOut"),
                        }
                    }
                    merger.absorb(&mut self.noc, batch);
                    trace_buf = merge_traces(std::mem::take(&mut trace_buf), round_trace);
                    rounds_done += 1;
                }
                Step::Finish {
                    to, expect_idle, gvt,
                } => {
                    let Some(g) = gvt else {
                        // The machine ran dry below the cap: the normal
                        // quiescent (or wedged) exit.
                        break (to, expect_idle);
                    };
                    // The cap ended the phase. Mirror the serial loop's
                    // mop-up exactly: it would fast-forward once to the
                    // next event `g` (clamped to the crash cycle), tick it,
                    // and then either exit on quiescence/crash or panic on
                    // the limit assert.
                    if let Some(c) = self.fault_plan.crash_at {
                        if coord.cap == c || (!extended && g > c) {
                            // The phase ran through the crash cycle (or no
                            // event precedes it): finish every lane *at* the
                            // crash cycle and latch the crash below.
                            break (c, false);
                        }
                    }
                    if extended {
                        panic!("machine did not quiesce within {limit} cycles (fleet engine)");
                    }
                    extended = true;
                    coord.cap = self.fault_plan.crash_at.map_or(g, |c| g.min(c));
                    // The capped exit recorded `g` as the last GVT; the
                    // mop-up round will re-derive it, which must not trip
                    // the strict-increase audit.
                    coord.prev_gvt = None;
                }
            }
        };

        // ---- finish: drain traces, close the phase, absorb results ----
        if tracing {
            for (_, _, ev) in trace_buf.drain(..) {
                self.trace_sink.txn(&ev);
            }
        }
        for c in 0..nchips {
            fleet.chips[c]
                .chan
                .send(&encode(&ToChip::Finish { to, expect_idle }));
        }
        let mut all_links: Vec<EpochLink> = Vec::with_capacity(n);
        let mut total_ticks = 0u64;
        for c in 0..nchips {
            match decode::<ToCoord>(&fleet.chips[c].chan.recv()) {
                ToCoord::PhaseEnd {
                    links,
                    slices,
                    activity,
                    ticks,
                } => {
                    let range = fleet.ranges[c].clone();
                    assert_eq!(slices.len(), range.len(), "phase-end slice count");
                    for (k, slice) in slices.into_iter().enumerate() {
                        let w = range.start + k;
                        let a = &activity[k];
                        let la = &mut self.lane_activity[w];
                        la.ticks += a.ticks;
                        la.skips += a.skips;
                        la.rounds += a.rounds;
                        la.epoch_len.merge(&a.epoch_len);
                        for (t, &brk) in slice.table_brks.iter().enumerate() {
                            self.partitions[w].tables[t].heap.set_brk(brk);
                        }
                        fleet.slices[w] = slice;
                    }
                    all_links.extend(links);
                    total_ticks += ticks;
                }
                _ => panic!("fleet: expected PhaseEnd"),
            }
        }
        self.noc.absorb_epoch(all_links, coord.take_slots());
        self.now = to;
        self.ticks_executed += total_ticks;
        self.epoch_rounds += rounds_done;
        self.fleet = Some(fleet);
        // The crash latches whenever the run advanced onto the crash cycle
        // — whether the cap forced it there or the machine's own last event
        // landed on it (serial ticks `c` in both cases).
        if self.fault_plan.crash_at == Some(to) {
            self.crashed = true;
            if let Some(mut hook) = self.crash_hook.take() {
                self.crash_image = Some(hook(self));
            }
        } else if !self.crashed {
            assert!(
                expect_idle,
                "fleet run ran dry without quiescing (wedged worker)"
            );
        }
        self.now - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring transport works in-process too (threads instead of forked
    /// processes share the mapping just as well), which is how it can be
    /// unit-tested under the multi-threaded cargo harness — whole-fleet
    /// tests live in single-threaded binaries (`fleetcheck`, `chaos`).
    #[test]
    fn shm_chan_streams_frames_larger_than_the_ring() {
        // Cross-wire manually (Chan::pair consults the env; build explicit).
        let (a, b) = (shm::Ring::alloc(), shm::Ring::alloc());
        let mut coord_end = Chan::Shm { tx: a, rx: b };
        let mut chip_end = Chan::Shm { tx: b, rx: a };

        let big: Vec<u8> = (0..(3 * shm::RING_CAP + 17))
            .map(|i| (i * 31 % 251) as u8)
            .collect();
        let expect = big.clone();
        let t = std::thread::spawn(move || {
            let got = chip_end.recv();
            chip_end.send(&[got.len() as u8, got[1], got[got.len() - 1]]);
            got
        });
        coord_end.send(&big);
        let ack = coord_end.recv();
        let got = t.join().unwrap();
        assert_eq!(got, expect);
        assert_eq!(ack[1], expect[1]);
        assert_eq!(ack[2], expect[expect.len() - 1]);
    }

    #[test]
    fn socket_chan_roundtrips_frames() {
        let (sa, sb) = UnixStream::pair().unwrap();
        let mut a = Chan::Socket(sa);
        let mut b = Chan::Socket(sb);
        let msg: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        let expect = msg.clone();
        let t = std::thread::spawn(move || {
            let got = b.recv();
            b.send(&got);
            got
        });
        a.send(&msg);
        assert_eq!(a.recv(), expect);
        assert_eq!(t.join().unwrap(), expect);
    }

    #[test]
    fn protocol_messages_round_trip() {
        let sync = ToChip::Sync {
            now: 42,
            journal: vec![(0x1000, vec![1, 2, 3]), (0x2000, vec![9])],
            submits: vec![(1, 0xdead, 40), (2, 0xbeef, 41)],
            brks: vec![vec![10, 20], vec![30]],
        };
        match decode::<ToChip>(&encode(&sync)) {
            ToChip::Sync {
                now,
                journal,
                submits,
                brks,
            } => {
                assert_eq!(now, 42);
                assert_eq!(journal, vec![(0x1000, vec![1, 2, 3]), (0x2000, vec![9])]);
                assert_eq!(submits, vec![(1, 0xdead, 40), (2, 0xbeef, 41)]);
                assert_eq!(brks, vec![vec![10, 20], vec![30]]);
            }
            _ => panic!("wrong variant"),
        }

        let out = ToCoord::RoundOut {
            outs: vec![(
                3,
                LaneOut {
                    hint: Some(77),
                    pos: 70,
                    quiescent: false,
                    drained: true,
                },
            )],
            batch: StagedBatch::empty(),
            trace: Vec::new(),
            journal: vec![(8, vec![0xff; 64])],
        };
        match decode::<ToCoord>(&encode(&out)) {
            ToCoord::RoundOut { outs, journal, .. } => {
                assert_eq!(outs.len(), 1);
                assert_eq!(outs[0].0, 3);
                assert_eq!(outs[0].1.hint, Some(77));
                assert_eq!(outs[0].1.pos, 70);
                assert!(outs[0].1.drained);
                assert_eq!(journal, vec![(8, vec![0xff; 64])]);
            }
            _ => panic!("wrong variant"),
        }

        let fin = ToChip::Finish {
            to: 99,
            expect_idle: true,
        };
        match decode::<ToChip>(&encode(&fin)) {
            ToChip::Finish { to, expect_idle } => {
                assert_eq!(to, 99);
                assert!(expect_idle);
            }
            _ => panic!("wrong variant"),
        }
        match decode::<ToChip>(&encode(&ToChip::Shutdown)) {
            ToChip::Shutdown => {}
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn worker_stats_wire_roundtrip() {
        let s = WorkerStats {
            local_requests: 1,
            remote_requests: 2,
            background_requests: 3,
            dup_requests: 4,
            dup_responses: 5,
            retries_sent: 6,
            retry_exhausted: 7,
        };
        assert_eq!(decode::<WorkerStats>(&encode(&s)), s);
    }
}
