//! Epoch-parallel simulation: conservative parallel discrete-event
//! simulation of the whole machine, bit-exact with serial ticking.
//!
//! # Why this is possible at all
//!
//! BionicDB's partitions are shared-nothing (paper §4; the same isolation
//! argument Porobic et al. make for "hardware islands"): a worker's
//! softcore, coprocessor, DRAM bank, and partition tables are touched by
//! that worker alone. The *only* inter-worker coupling is the NoC, and
//! every NoC path `(src, dst)` has a minimum latency
//! `L(src, dst) = noc.min_latency(src, dst)` — the classic **lookahead**
//! of conservative PDES, here kept as a full per-pair matrix rather than
//! a single global minimum. A message sent at cycle `c` is delivered no
//! earlier than `c + L(src, dst)`, so a lane whose potential senders are
//! all *far away* can safely run far ahead of a lane whose senders are
//! near.
//!
//! # The schedule (GVT + per-pair horizons)
//!
//! Each worker *lane* (worker + bank + tables + detached [`EpochLink`])
//! is a work item. Per round:
//!
//! 1. The coordinator computes each lane's **base** `base_j` — a lower
//!    bound on the next cycle lane `j` can act at: its exit hint, the
//!    arrival of its earliest undelivered routed packet, and the arrival
//!    floor of any still-uncommitted staged send addressed to it.
//! 2. `GVT = min_j base_j`. The [`EpochMerger`] **commits** every staged
//!    send with cycle `< GVT` in exact serial `(cycle, src)` order —
//!    replaying fault ordinals, the per-source issue ledger, latency
//!    stats, and queue-high-water marks bit-identically — and routes the
//!    resulting deliveries. Commits can raise bases (a drop fault removes
//!    an arrival floor), so this loops to a fixpoint.
//! 3. Earliest-action bounds are relaxed to a fixpoint:
//!    `A_j = min(base_j, min_{k != j}(A_k + L(k, j)))` — the Bellman-Ford
//!    step that catches *chains* (k wakes j cheaply, j wakes i cheaply,
//!    even though k → i directly is expensive).
//! 4. Per-lane horizon `H_i = min(floor_i, min_{j != i}(A_j + L(j, i))) - 1`
//!    (capped): no send any lane can still make, and no send already
//!    staged, can arrive at `i` at or before `H_i`. In
//!    [`LookaheadMode::Global`] the horizon is instead the uniform
//!    `GVT + Lmin - 1` — the PR-4 baseline, kept for `parcheck` diffing.
//! 5. Every lane whose next action is `<= H_i` becomes a work item on a
//!    shared schedule; threads (the coordinator included) **claim lanes
//!    dynamically** with an atomic cursor, so skewed workloads no longer
//!    idle threads behind a static chunking. Each finished lane deposits
//!    its round traffic and trace into a **combining tree** whose nodes
//!    merge pairwise, in parallel, with order-preserving merges — the
//!    root is deterministic regardless of thread interleaving.
//!
//! Trace events drain to the sink only below the GVT (their serial order
//! is then final); the remainder drains at epoch end. When the GVT passes
//! the cap (or nothing remains), every lane is topped up (`skip`) to a
//! common cycle and control returns to the serial loop in
//! [`Machine::run_to_quiescence_limit`], which owns the uniform exit
//! conditions (quiescence, crash, limit panic).
//!
//! # Determinism invariants
//!
//! * A lane ticks exactly the set of cycles at which serial ticking would
//!   have given its components an event; ticking an event-free cycle is
//!   `skip(1)` per the PR-1 fast-forward contract, so per-worker state is
//!   bit-identical. An unscheduled lane is equivalent to a scheduled lane
//!   with nothing to do (zero ticks, unchanged hint), so dynamic
//!   scheduling is bit-inert.
//! * NoC effects are committed strictly below the GVT in (cycle, worker)
//!   order — the serial send order — and no lane can ever stage a send
//!   below the GVT afterwards (every future action of lane `j` is
//!   `>= base_j >= GVT`), so fault ordinals, issue-width ledgers, stats,
//!   and queue high-water marks are bit-identical. See DESIGN.md §11 for
//!   the full argument.
//! * Traces are merged by (cycle, worker-id) — the serial drain order.
//! * A scheduled crash caps the epoch phase at `crash_at - 1`; the crash
//!   cycle itself is *ticked* by the serial loop, so the crash-instant
//!   state (and the [`crate::recovery::DurableImage`] the hook snapshots)
//!   is bit-identical to a serial run.
//!
//! The coordination barrier blocks (mutex + condvar) rather than spins, so
//! oversubscribed hosts — including single-core CI boxes — degrade
//! gracefully instead of burning timeslices.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use bionicdb_coproc::layout::TableState;
use bionicdb_fpga::obs::LatencyHistogram;
use bionicdb_fpga::{Dram, TxnEvent};
use bionicdb_noc::{EpochLink, EpochMerger, Noc, Packet, StagedBatch};
use bionicdb_softcore::catalogue::Catalogue;
use bionicdb_softcore::PartitionId;

use super::{LookaheadMode, Machine};
use crate::worker::PartitionWorker;

/// One worker's slice of the machine, self-contained for a round. Shared
/// with the fleet engine (`machine/fleet.rs`), where a chip process builds
/// one per owned worker each phase.
pub(crate) struct Lane<'a> {
    pub(crate) idx: usize,
    pub(crate) worker: &'a mut PartitionWorker,
    pub(crate) bank: &'a mut Dram,
    pub(crate) tables: &'a mut [TableState],
    /// This lane's clock: the last cycle it ticked or skipped to.
    pub(crate) pos: u64,
    /// Component ticks executed by this lane (simulator instrumentation).
    pub(crate) ticks: u64,
    /// Cycles this lane fast-forwarded over instead of ticking
    /// (simulator instrumentation).
    pub(crate) skips: u64,
    /// Rounds this lane was scheduled for (simulator instrumentation).
    pub(crate) rounds: u64,
    /// Distribution of granted epoch spans (horizon minus entry position;
    /// simulator instrumentation).
    pub(crate) epoch_len: LatencyHistogram,
    /// Trace events buffered this round, stamped with their cycle.
    pub(crate) trace: Vec<(u64, TxnEvent)>,
}

/// The scalars a lane reports at the round barrier (its traffic and trace
/// travel through the combining tree instead).
pub(crate) struct LaneOut {
    /// The lane's next self-known action (`> horizon`), or `None` when the
    /// worker, bank, and queued deliveries are all exhausted.
    pub(crate) hint: Option<u64>,
    pub(crate) pos: u64,
    pub(crate) quiescent: bool,
    /// Whether the lane's delivery queue was empty at harvest.
    pub(crate) drained: bool,
}

/// A lane plus everything a claiming thread needs to run it for a round.
struct LaneCell<'a> {
    lane: Lane<'a>,
    link: EpochLink,
    /// Deliveries routed since the lane last ran, handed to
    /// [`EpochLink::begin_round`] when the lane is next scheduled.
    pending: Vec<(u64, Packet)>,
    /// The horizon granted for the current round.
    horizon: u64,
    out: Option<LaneOut>,
    /// When the claiming thread finished this lane — the coordinator turns
    /// it into per-lane barrier idle time.
    done_at: Option<Instant>,
}

/// One leaf (or merged subtree) of the round's combining tree.
struct RoundNode {
    batch: StagedBatch,
    /// Trace events `(cycle, lane, event)`, sorted by `(cycle, lane)`.
    trace: Vec<(u64, u32, TxnEvent)>,
}

impl RoundNode {
    fn empty() -> Self {
        RoundNode {
            batch: StagedBatch::empty(),
            trace: Vec::new(),
        }
    }

    /// Deterministic pairwise combine: order-preserving merges keyed the
    /// way a serial pass would have ordered the concatenation.
    fn merge(a: Self, b: Self) -> Self {
        RoundNode {
            batch: StagedBatch::merge(a.batch, b.batch),
            trace: merge_traces(a.trace, b.trace),
        }
    }
}

/// Order-preserving two-pointer merge of `(cycle, lane)`-sorted traces;
/// `<=` keeps the left operand first on ties, matching a stable sort of
/// the concatenation.
pub(crate) fn merge_traces(
    a: Vec<(u64, u32, TxnEvent)>,
    b: Vec<(u64, u32, TxnEvent)>,
) -> Vec<(u64, u32, TxnEvent)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&(ca, la, _)), Some(&(cb, lb, _))) => {
                if (ca, la) <= (cb, lb) {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// The hierarchical merge: a heap-indexed binary combining tree. Leaves
/// live at `[m, 2m)`, internal nodes at `[1, m)`, the root at 1. A thread
/// deposits its finished lane's [`RoundNode`] at its claimed leaf and
/// climbs: the *second* arrival at each parent merges the two children and
/// continues up, so merge work is spread across whichever threads finish
/// last on each subtree — not serialized under the barrier.
struct MergeTree {
    nodes: Vec<Mutex<Option<RoundNode>>>,
    /// Per-internal-node arrival counters (index-aligned with `nodes`).
    arrivals: Vec<AtomicUsize>,
    /// Leaf count (power of two).
    m: usize,
}

impl MergeTree {
    fn new(leaves: usize) -> Self {
        let m = leaves.next_power_of_two().max(1);
        MergeTree {
            nodes: (0..2 * m).map(|_| Mutex::new(None)).collect(),
            arrivals: (0..m).map(|_| AtomicUsize::new(0)).collect(),
            m,
        }
    }

    fn leaves(&self) -> usize {
        self.m
    }

    /// Coordinator-only, between rounds: rearm the arrival counters.
    fn reset(&self) {
        for a in &self.arrivals {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Place `node` at leaf `k` and climb, merging at each parent where
    /// this thread arrives second. Mutexes order the node writes against
    /// the counter increments.
    fn deposit(&self, k: usize, node: RoundNode) {
        let mut i = self.m + k;
        *self.nodes[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(node);
        while i > 1 {
            let p = i >> 1;
            if self.arrivals[p].fetch_add(1, Ordering::AcqRel) == 0 {
                return; // first at this parent: the sibling's thread merges
            }
            let l = self.nodes[2 * p]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("left child deposited");
            let r = self.nodes[2 * p + 1]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("right child deposited");
            *self.nodes[p].lock().unwrap_or_else(PoisonError::into_inner) =
                Some(RoundNode::merge(l, r));
            i = p;
        }
    }

    /// Coordinator-only, after the barrier: harvest the fully merged root.
    fn take_root(&self) -> RoundNode {
        self.nodes[1]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("combining tree root deposited")
    }
}

/// Coordinator commands, published before the round barrier.
#[derive(Clone, Copy)]
enum Cmd {
    /// Claim lanes off the shared schedule and run each to its granted
    /// per-lane horizon.
    Run,
    /// Claim lanes, top each up to cycle `to`, and exit. `expect_idle`
    /// asserts the machine is quiescent (the audit for the serial loop's
    /// exit).
    Finish { to: u64, expect_idle: bool },
}

/// A blocking reusable barrier with panic poisoning: if any participant
/// panics mid-round, the rest unblock and panic too instead of deadlocking
/// under `std::thread::scope`'s implicit join.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    n: usize,
}

struct GateState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl Gate {
    fn new(n: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait(&self) {
        let mut g = self.lock();
        if g.poisoned {
            drop(g);
            panic!("epoch-parallel peer panicked");
        }
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return;
        }
        let generation = g.generation;
        while g.generation == generation && !g.poisoned {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        let poisoned = g.poisoned;
        drop(g);
        if poisoned {
            panic!("epoch-parallel peer panicked");
        }
    }

    fn poison(&self) {
        let mut g = self.lock();
        g.poisoned = true;
        self.cv.notify_all();
    }
}

/// Poisons the gate when its owner unwinds, releasing blocked peers.
struct PanicGuard<'a>(&'a Gate);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The earliest cycle `> lane.pos` at which this lane has an event: its
/// worker's own next event, its bank's next completion, or its queue
/// front becoming deliverable — the per-worker slice of the serial
/// scheduler's global `next_event`.
///
/// One deliberate asymmetry: a *quiescent* worker with no queued NoC
/// deliveries never wakes for bank-only events. Those are orphan
/// responses to requests whose transactions already retired (aborts
/// abandon in-flight reads); the serial loop exits at machine quiescence
/// with such responses still in flight, so a lane that kept ticking to
/// drain them would over-account idle cycles past the serial exit cycle.
/// Delivering and draining an orphan is stat-neutral, so *when* it
/// happens (here: only while the lane is otherwise active) is invisible.
/// (Posted-write acknowledgements no longer reach this path at all: the
/// banks cancel them at completion.)
pub(crate) fn lane_next(lane: &Lane<'_>, link: &EpochLink) -> Option<u64> {
    let link_next = link.next_ready(lane.pos);
    if link_next.is_none() && lane.worker.is_quiescent() {
        return None;
    }
    if lane.bank.has_buffered_responses() {
        return Some(lane.pos + 1);
    }
    let mut best = lane.worker.next_event(lane.pos);
    if let Some(t) = lane.bank.next_event() {
        let t = t.max(lane.pos + 1);
        best = Some(best.map_or(t, |b| b.min(t)));
    }
    if let Some(t) = link_next {
        best = Some(best.map_or(t, |b| b.min(t)));
    }
    best
}

/// Run one lane through one round: fast-forward from event to event,
/// ticking every cycle `<= horizon` at which the lane could act. Returns
/// the lane's exit hint.
pub(crate) fn run_round(
    lane: &mut Lane<'_>,
    link: &mut EpochLink,
    horizon: u64,
    cat: &Catalogue,
    tracing: bool,
) -> Option<u64> {
    loop {
        match lane_next(lane, link) {
            Some(t) if t <= horizon => {
                let k = t - lane.pos - 1;
                if k > 0 {
                    lane.worker.skip(k);
                    lane.skips += k;
                }
                lane.pos = t;
                lane.ticks += 1;
                lane.bank.tick(t);
                lane.worker.tick(t, lane.bank, cat, link, lane.tables);
                if tracing {
                    for ev in lane.worker.softcore.drain_trace() {
                        lane.trace.push((t, ev));
                    }
                }
            }
            other => break other,
        }
    }
}

/// Top a lane up to the common exit cycle. With `expect_idle` (the
/// coordinator determined the machine is quiescent) this also audits that
/// nothing was left behind — the parallel counterpart of the serial
/// loop's `is_quiescent` exit check.
pub(crate) fn finish_lane(lane: &mut Lane<'_>, link: &EpochLink, to: u64, expect_idle: bool) {
    debug_assert!(to >= lane.pos, "finish target behind lane position");
    if to > lane.pos {
        lane.worker.skip(to - lane.pos);
        lane.skips += to - lane.pos;
        lane.pos = to;
    }
    if expect_idle {
        debug_assert!(
            lane.worker.is_quiescent(),
            "quiescent finish with a busy worker"
        );
        // Note: the DRAM bank may legitimately still hold in-flight or
        // buffered *orphan* responses here — serial exits at machine
        // quiescence without waiting for them (see `lane_next`).
        debug_assert!(
            link.next_ready(to).is_none(),
            "quiescent finish with a queued NoC delivery"
        );
    }
}

/// The work-stealing loop every thread (coordinator included) runs during
/// a round: claim the next scheduled lane off the shared cursor, run it to
/// its granted horizon, and deposit its traffic/trace into the combining
/// tree at the claimed slot.
fn run_claimed(
    cells: &[Mutex<LaneCell<'_>>],
    sched: &Mutex<Vec<usize>>,
    cursor: &AtomicUsize,
    tree: &MergeTree,
    cat: &Catalogue,
    tracing: bool,
) {
    loop {
        let k = cursor.fetch_add(1, Ordering::SeqCst);
        let idx = {
            let sch = sched.lock().unwrap_or_else(PoisonError::into_inner);
            match sch.get(k) {
                Some(&i) => i,
                None => break,
            }
        };
        let mut guard = cells[idx].lock().unwrap_or_else(PoisonError::into_inner);
        let cell = &mut *guard;
        let pending = std::mem::take(&mut cell.pending);
        cell.link.begin_round(pending);
        let horizon = cell.horizon;
        cell.lane.rounds += 1;
        cell.lane.epoch_len.record(horizon - cell.lane.pos);
        let hint = run_round(&mut cell.lane, &mut cell.link, horizon, cat, tracing);
        let traffic = cell.link.harvest();
        let drained = traffic.queue_drained();
        let lane_id = cell.lane.idx as u32;
        let trace: Vec<(u64, u32, TxnEvent)> = cell
            .lane
            .trace
            .drain(..)
            .map(|(c, ev)| (c, lane_id, ev))
            .collect();
        cell.out = Some(LaneOut {
            hint,
            pos: cell.lane.pos,
            quiescent: cell.lane.worker.is_quiescent(),
            drained,
        });
        cell.done_at = Some(Instant::now());
        drop(guard);
        tree.deposit(
            k,
            RoundNode {
                batch: StagedBatch::from_traffic(traffic),
                trace,
            },
        );
    }
}

/// The claim loop for the exit command: top every lane up to `to`.
fn finish_claimed(
    cells: &[Mutex<LaneCell<'_>>],
    sched: &Mutex<Vec<usize>>,
    cursor: &AtomicUsize,
    to: u64,
    expect_idle: bool,
) {
    loop {
        let k = cursor.fetch_add(1, Ordering::SeqCst);
        let idx = {
            let sch = sched.lock().unwrap_or_else(PoisonError::into_inner);
            match sch.get(k) {
                Some(&i) => i,
                None => break,
            }
        };
        let mut guard = cells[idx].lock().unwrap_or_else(PoisonError::into_inner);
        let cell = &mut *guard;
        finish_lane(&mut cell.lane, &cell.link, to, expect_idle);
    }
}

/// The loop a spawned worker thread runs: wait for a command, claim work,
/// repeat until `Finish`.
#[allow(clippy::too_many_arguments)]
fn participant(
    cells: &[Mutex<LaneCell<'_>>],
    sched: &Mutex<Vec<usize>>,
    cursor: &AtomicUsize,
    tree: &MergeTree,
    gate: &Gate,
    cmd: &Mutex<Cmd>,
    cat: &Catalogue,
    tracing: bool,
) {
    loop {
        gate.wait();
        let c = *cmd.lock().unwrap_or_else(PoisonError::into_inner);
        match c {
            Cmd::Run => {
                run_claimed(cells, sched, cursor, tree, cat, tracing);
                gate.wait();
            }
            Cmd::Finish { to, expect_idle } => {
                finish_claimed(cells, sched, cursor, to, expect_idle);
                return;
            }
        }
    }
}

/// One scheduled lane in a barrier round:
/// `(lane index, granted horizon, deliveries routed since it last ran)`.
pub(crate) type RoundEntry = (usize, u64, Vec<(u64, Packet)>);

/// What the coordinator decided for the next barrier round.
pub(crate) enum Step {
    /// Run the listed lanes, each to its granted horizon, delivering the
    /// attached pending packets first. `gvt` is the round's commit bound:
    /// buffered trace events below it are final in serial order.
    Round { lanes: Vec<RoundEntry>, gvt: u64 },
    /// The epoch phase is over: top every lane up to `to` and hand control
    /// back to the serial loop. `gvt` is the exit bound — `None` means the
    /// machine ran dry, `Some(g)` (necessarily `> cap`) means the cap ended
    /// the phase; the fleet engine uses that to place a crash cycle.
    Finish {
        to: u64,
        expect_idle: bool,
        gvt: Option<u64>,
    },
}

/// The coordinator-side scheduling brain of one epoch phase — GVT
/// fixpoint, staged-send commits, Bellman-Ford earliest-action relaxation,
/// per-lane horizon grants — with *no* opinion about how lanes actually
/// execute. [`Machine::run_epochs`] drives it with scoped threads over
/// in-process lanes; the fleet engine (`machine/fleet.rs`) drives the very
/// same object over chip processes, which is what makes the two engines
/// bit-identical by construction rather than by parallel maintenance.
pub(crate) struct EpochCoordinator {
    n: usize,
    mode: LookaheadMode,
    pub(crate) cap: u64,
    /// Global minimum lookahead (for [`LookaheadMode::Global`]).
    lmin: u64,
    now0: u64,
    /// Per-lane exit hints, refreshed from [`LaneOut`] at each barrier.
    hint: Vec<Option<u64>>,
    pub(crate) pos: Vec<u64>,
    drained: Vec<bool>,
    quiescent: Vec<bool>,
    /// Deliveries routed but not yet handed to a scheduled lane.
    slots: Vec<Vec<(u64, Packet)>>,
    base: Vec<Option<u64>>,
    floors: Vec<Option<u64>>,
    /// The last round's GVT (strict-increase audit + exit reporting). The
    /// fleet engine resets it when it extends the cap for the post-cap
    /// mop-up round, since that round legitimately re-derives the same
    /// bound the capped exit reported.
    pub(crate) prev_gvt: Option<u64>,
}

impl EpochCoordinator {
    /// Build from the phase-entry snapshot: one `(hint, drained,
    /// quiescent)` triple per lane, captured right after
    /// [`Noc::begin_epoch`] detached the links.
    pub(crate) fn new(
        mode: LookaheadMode,
        cap: u64,
        lmin: u64,
        now0: u64,
        init: Vec<(Option<u64>, bool, bool)>,
    ) -> Self {
        let n = init.len();
        let mut hint = Vec::with_capacity(n);
        let mut drained = Vec::with_capacity(n);
        let mut quiescent = Vec::with_capacity(n);
        for (h, d, q) in init {
            hint.push(h);
            drained.push(d);
            quiescent.push(q);
        }
        EpochCoordinator {
            n,
            mode,
            cap,
            lmin,
            now0,
            hint,
            pos: vec![now0; n],
            drained,
            quiescent,
            slots: (0..n).map(|_| Vec::new()).collect(),
            base: vec![None; n],
            floors: vec![None; n],
            prev_gvt: None,
        }
    }

    /// Absorb one scheduled lane's barrier report.
    pub(crate) fn note_out(&mut self, i: usize, out: &LaneOut) {
        self.hint[i] = out.hint;
        self.pos[i] = out.pos;
        self.drained[i] = out.drained;
        self.quiescent[i] = out.quiescent;
    }

    /// The undelivered routed packets, surrendered at phase exit for
    /// [`Noc::absorb_epoch`].
    pub(crate) fn take_slots(&mut self) -> Vec<Vec<(u64, Packet)>> {
        std::mem::take(&mut self.slots)
    }

    /// Decide the next round: run the GVT fixpoint (committing staged
    /// sends below the bound until no commit can raise it), then either
    /// grant horizons and schedule every lane with work, or declare the
    /// phase over. See the module docs for the full argument.
    pub(crate) fn next_step(&mut self, merger: &mut EpochMerger, noc: &mut Noc) -> Step {
        let n = self.n;
        let pid = |i: usize| PartitionId(i as u16);
        // ---- GVT fixpoint: commit staged sends below the bound until no
        // commit can raise it further ----
        let gvt = loop {
            let floors_now = merger.arrival_floors(noc);
            let mut g: Option<u64> = None;
            for (i, &floor) in floors_now.iter().enumerate() {
                let mut b = self.hint[i];
                if self.drained[i] {
                    if let Some(&(arr, _)) = self.slots[i].first() {
                        let w = arr.max(self.pos[i] + 1);
                        b = Some(b.map_or(w, |x| x.min(w)));
                    }
                }
                if let Some(f) = floor {
                    let w = f.max(self.pos[i] + 1);
                    b = Some(b.map_or(w, |x| x.min(w)));
                }
                self.base[i] = b;
                if let Some(t) = b {
                    g = Some(g.map_or(t, |x| x.min(t)));
                }
            }
            self.floors = floors_now;
            let Some(g) = g else { break None };
            let (deliv, committed) = merger.commit(noc, Some(g));
            for (w, d) in deliv.into_iter().enumerate() {
                for (arr, pkt) in d {
                    debug_assert!(
                        arr > self.pos[w],
                        "delivery at {arr} behind lane {w} at {}",
                        self.pos[w]
                    );
                    self.slots[w].push((arr, pkt));
                }
            }
            if committed == 0 {
                break Some(g);
            }
        };
        debug_assert!(
            self.prev_gvt.is_none_or(|p| gvt.is_none_or(|g| g > p)),
            "GVT must strictly increase across rounds"
        );
        self.prev_gvt = gvt;

        let Some(gvt) = gvt.filter(|&g| g <= self.cap) else {
            // ---- exit: flush the merger, pick the common top-up cycle ----
            let (extra, _) = merger.commit(noc, None);
            debug_assert!(
                extra.iter().all(Vec::is_empty),
                "staged sends survived past the cap"
            );
            debug_assert!(merger.is_drained(), "merger left unreconciled state");
            let to = self.pos.iter().copied().max().unwrap_or(self.now0);
            let expect_idle = self.quiescent.iter().all(|&q| q) && self.prev_gvt.is_none();
            if expect_idle {
                debug_assert!(
                    self.slots.iter().all(Vec::is_empty),
                    "quiescent exit with undelivered NoC traffic"
                );
            }
            return Step::Finish {
                to,
                expect_idle,
                gvt: self.prev_gvt,
            };
        };

        // ---- earliest-action fixpoint (Bellman-Ford over the lookahead
        // matrix): A_j bounds the earliest cycle lane j can still act —
        // and therefore send — at, including being woken through a chain
        // of nearer lanes ----
        let mut act = self.base.clone();
        if self.mode == LookaheadMode::Matrix {
            loop {
                let mut changed = false;
                for j in 0..n {
                    for k in 0..n {
                        if k == j {
                            continue;
                        }
                        if let Some(ak) = act[k] {
                            let via = ak.saturating_add(noc.min_latency(pid(k), pid(j)));
                            if act[j].is_none_or(|aj| via < aj) {
                                act[j] = Some(via);
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // ---- grant horizons, schedule lanes with work ----
        let mut lanes: Vec<RoundEntry> = Vec::new();
        for i in 0..n {
            let h = match self.mode {
                LookaheadMode::Global => gvt.saturating_add(self.lmin - 1),
                LookaheadMode::Matrix => {
                    // No send any lane can still make, and no send already
                    // staged, arrives at i by H_i.
                    let mut bound = self.floors[i];
                    for (j, aj) in act.iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        if let Some(aj) = aj {
                            let arr = aj.saturating_add(noc.min_latency(pid(j), pid(i)));
                            bound = Some(bound.map_or(arr, |b| b.min(arr)));
                        }
                    }
                    bound.map_or(self.cap, |b| b.saturating_sub(1))
                }
            }
            .min(self.cap);
            debug_assert!(h >= gvt, "horizon below the GVT stalls the round");
            // The lane's next *performable* action (arrival floors are not
            // performable until delivered).
            let mut na = self.hint[i];
            if self.drained[i] {
                if let Some(&(arr, _)) = self.slots[i].first() {
                    let w = arr.max(self.pos[i] + 1);
                    na = Some(na.map_or(w, |x| x.min(w)));
                }
            }
            if let Some(t) = na {
                if t <= h {
                    lanes.push((i, h, std::mem::take(&mut self.slots[i])));
                }
            }
        }
        debug_assert!(
            !lanes.is_empty(),
            "GVT <= cap must schedule at least the GVT lane"
        );
        Step::Round { lanes, gvt }
    }
}

impl Machine {
    /// The epoch-parallel phase of [`Machine::run_to_quiescence_limit`]:
    /// advance the machine as far as the lookahead allows on
    /// `sim_threads` real threads, bit-exactly, then return so the serial
    /// loop can apply its uniform exit conditions. See the module docs and
    /// DESIGN.md §11 for the argument.
    pub(crate) fn run_epochs(&mut self, start: u64, limit: u64) {
        if limit == 0 || self.is_quiescent() {
            return;
        }
        let mode = self.lookahead_mode;
        // Never run at or past the crash cycle: the crash cycle must be
        // *ticked* (by the serial loop) so the crash-instant state and the
        // hook's durable snapshot are bit-identical to a serial run.
        let mut cap = start.saturating_add(limit) - 1;
        if let Some(c) = self.fault_plan.crash_at {
            if c <= self.now + 1 {
                return;
            }
            cap = cap.min(c - 1);
        }
        let t0 = if self.any_buffered_responses() {
            Some(self.now + 1)
        } else {
            self.next_event()
        };
        let Some(t0) = t0 else { return };
        if t0 > cap {
            return;
        }

        let n = self.workers.len();
        let threads = self.sim_threads.min(n);
        let tracing = self.trace_sink.enabled();
        let now0 = self.now;
        // Split the machine into disjoint per-worker lanes. The host DRAM
        // view, catalogue, NoC, and trace sink stay with the coordinator.
        let cat = &self.cat;
        let noc = &mut self.noc;
        let sink = &mut self.trace_sink;
        let lmin = noc.min_hop_latency();
        // The merger's depth mirror must be captured before `begin_epoch`
        // detaches the delivery queues.
        let mut merger = EpochMerger::new(noc);
        let links: Vec<EpochLink> = noc.begin_epoch();

        // Coordinator-side per-lane state lives in the EpochCoordinator,
        // refreshed from LaneOut at each barrier (stale-safe for
        // unscheduled lanes: nothing they own changes while they sit out).
        let mut init: Vec<(Option<u64>, bool, bool)> = Vec::with_capacity(n);
        let mut idle_ns: Vec<u64> = vec![0; n];

        let cells: Vec<Mutex<LaneCell<'_>>> = self
            .workers
            .iter_mut()
            .zip(self.banks.iter_mut())
            .zip(self.partitions.iter_mut())
            .zip(links)
            .enumerate()
            .map(|(idx, (((worker, bank), part), link))| {
                let lane = Lane {
                    idx,
                    worker,
                    bank,
                    tables: &mut part.tables,
                    pos: now0,
                    ticks: 0,
                    skips: 0,
                    rounds: 0,
                    epoch_len: LatencyHistogram::new(),
                    trace: Vec::new(),
                };
                init.push((
                    lane_next(&lane, &link),
                    link.next_ready(now0).is_none(),
                    lane.worker.is_quiescent(),
                ));
                Mutex::new(LaneCell {
                    lane,
                    link,
                    pending: Vec::new(),
                    horizon: now0,
                    out: None,
                    done_at: None,
                })
            })
            .collect();
        let mut coord = EpochCoordinator::new(mode, cap, lmin, now0, init);

        let gate = Gate::new(threads);
        let cmd_slot: Mutex<Cmd> = Mutex::new(Cmd::Run);
        let sched: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let cursor = AtomicUsize::new(0);
        let tree = MergeTree::new(n);
        let mut rounds_done = 0u64;
        let mut trace_buf: Vec<(u64, u32, TxnEvent)> = Vec::new();

        let (slots, to) = std::thread::scope(|s| {
            for _ in 1..threads {
                let (cells, sched, cursor, tree, gate, cmd_slot) =
                    (&cells, &sched, &cursor, &tree, &gate, &cmd_slot);
                s.spawn(move || {
                    let _guard = PanicGuard(gate);
                    participant(cells, sched, cursor, tree, gate, cmd_slot, cat, tracing);
                });
            }

            let _guard = PanicGuard(&gate);
            loop {
                match coord.next_step(&mut merger, noc) {
                    Step::Finish {
                        to, expect_idle, ..
                    } => {
                        // ---- exit: drain traces, top all lanes up to the
                        // common cycle ----
                        if tracing {
                            for (_, _, ev) in trace_buf.drain(..) {
                                sink.txn(&ev);
                            }
                        }
                        {
                            let mut sch = sched.lock().unwrap_or_else(PoisonError::into_inner);
                            sch.clear();
                            sch.extend(0..n);
                        }
                        cursor.store(0, Ordering::SeqCst);
                        *cmd_slot.lock().unwrap_or_else(PoisonError::into_inner) =
                            Cmd::Finish { to, expect_idle };
                        gate.wait(); // release peers into Finish
                        finish_claimed(&cells, &sched, &cursor, to, expect_idle);
                        break (coord.take_slots(), to);
                    }
                    Step::Round { lanes, gvt } => {
                        // Trace events below the GVT are final in serial
                        // order.
                        if tracing {
                            let cut = trace_buf.partition_point(|&(c, _, _)| c < gvt);
                            for (_, _, ev) in trace_buf.drain(..cut) {
                                sink.txn(&ev);
                            }
                        }
                        let round_lanes: Vec<usize> = lanes.iter().map(|&(i, _, _)| i).collect();
                        for (i, horizon, pending) in lanes {
                            let mut cell =
                                cells[i].lock().unwrap_or_else(PoisonError::into_inner);
                            cell.horizon = horizon;
                            cell.pending = pending;
                        }
                        {
                            let mut sch = sched.lock().unwrap_or_else(PoisonError::into_inner);
                            sch.clear();
                            sch.extend_from_slice(&round_lanes);
                        }
                        cursor.store(0, Ordering::SeqCst);
                        tree.reset();
                        for leaf in round_lanes.len()..tree.leaves() {
                            tree.deposit(leaf, RoundNode::empty());
                        }
                        *cmd_slot.lock().unwrap_or_else(PoisonError::into_inner) = Cmd::Run;
                        gate.wait(); // release the round
                        run_claimed(&cells, &sched, &cursor, &tree, cat, tracing);
                        gate.wait(); // all results in
                        rounds_done += 1;

                        let barrier_end = Instant::now();
                        for &i in &round_lanes {
                            let mut cell =
                                cells[i].lock().unwrap_or_else(PoisonError::into_inner);
                            let out = cell.out.take().expect("scheduled lane reported");
                            coord.note_out(i, &out);
                            if let Some(done) = cell.done_at.take() {
                                idle_ns[i] += barrier_end.duration_since(done).as_nanos() as u64;
                            }
                        }
                        let root = tree.take_root();
                        merger.absorb(noc, root.batch);
                        trace_buf = merge_traces(std::mem::take(&mut trace_buf), root.trace);
                    }
                }
            }
        });

        let mut total_ticks = 0u64;
        let mut links: Vec<EpochLink> = Vec::with_capacity(n);
        for (i, cell) in cells.into_iter().enumerate() {
            let cell = cell.into_inner().unwrap_or_else(PoisonError::into_inner);
            total_ticks += cell.lane.ticks;
            let la = &mut self.lane_activity[i];
            la.ticks += cell.lane.ticks;
            la.skips += cell.lane.skips;
            la.rounds += cell.lane.rounds;
            la.barrier_idle_ns += idle_ns[i];
            la.epoch_len.merge(&cell.lane.epoch_len);
            debug_assert!(cell.pending.is_empty(), "undelivered pending at exit");
            links.push(cell.link);
        }
        noc.absorb_epoch(links, slots);
        self.now = to;
        // In parallel mode a "tick" is one *component* tick (a single
        // worker at a single cycle) rather than one whole-machine cycle —
        // like strict-vs-fast, the unit deliberately measures the
        // simulator, not the machine.
        self.ticks_executed += total_ticks;
        self.epoch_rounds += rounds_done;
    }
}
