//! Epoch-parallel simulation: conservative parallel discrete-event
//! simulation of the whole machine, bit-exact with serial ticking.
//!
//! # Why this is possible at all
//!
//! BionicDB's partitions are shared-nothing (paper §4; the same isolation
//! argument Porobic et al. make for "hardware islands"): a worker's
//! softcore, coprocessor, DRAM bank, and partition tables are touched by
//! that worker alone. The *only* inter-worker coupling is the NoC, and
//! every NoC path has a minimum latency `L = noc.min_hop_latency()` — the
//! classic **lookahead** of conservative PDES. A message sent at cycle `c`
//! is delivered no earlier than `c + L`, so a *round* covering cycles
//! `(H_prev, H]` with `H - T < L` (where `T` is the earliest pending
//! action) can execute every worker to `H` with **no** communication: any
//! send inside the round lands strictly beyond `H`.
//!
//! # The schedule
//!
//! Each round:
//!
//! 1. the coordinator computes `T` (the earliest next action anywhere) and
//!    sets the horizon `H = min(T + L - 1, cap)`;
//! 2. every worker *lane* (worker + bank + tables + detached
//!    [`EpochLink`]) runs independently — on its own thread — using the
//!    per-worker fast-forward (`next_event`/`skip`) to jump idle spans,
//!    executing every cycle `<= H` at which it has an event;
//! 3. at the barrier, the coordinator replays the staged NoC sends in the
//!    exact serial order (cycle, then worker id), routes the resulting
//!    deliveries (all `> H` — asserted), merges traces in serial sink
//!    order, and computes the next `T` from the lanes' exit hints.
//!
//! When no action remains at or below `cap`, every lane is topped up
//! (`skip`) to a common cycle and control returns to the serial loop in
//! [`Machine::run_to_quiescence_limit`], which owns the uniform exit
//! conditions (quiescence, crash, limit panic).
//!
//! # Determinism invariants
//!
//! * A lane ticks exactly the set of cycles at which serial ticking would
//!   have given its components an event; ticking an event-free cycle is
//!   `skip(1)` per the PR-1 fast-forward contract, so per-worker state is
//!   bit-identical.
//! * NoC effects are replayed at the barrier in (cycle, worker-id) order —
//!   the serial send order — so fault ordinals, issue-width ledgers,
//!   stats, and queue high-water marks are bit-identical.
//! * Traces are merged by (cycle, worker-id) — the serial drain order.
//! * A scheduled crash caps the epoch phase at `crash_at - 1`; the crash
//!   cycle itself is *ticked* by the serial loop, so the crash-instant
//!   state (and the [`crate::recovery::DurableImage`] the hook snapshots)
//!   is bit-identical to a serial run.
//!
//! The coordination barrier blocks (mutex + condvar) rather than spins, so
//! oversubscribed hosts — including single-core CI boxes — degrade
//! gracefully instead of burning timeslices.

use std::sync::{Condvar, Mutex};

use bionicdb_coproc::layout::TableState;
use bionicdb_fpga::{Dram, TxnEvent};
use bionicdb_noc::{EpochLink, EpochTraffic, Packet};
use bionicdb_softcore::catalogue::Catalogue;

use super::Machine;
use crate::worker::PartitionWorker;

/// What a spawned worker thread leaves behind when it finishes: the index
/// of its first lane (for reassembling global link order) and its links.
/// Per-lane tick/skip counters stay on the [`Lane`]s themselves, which the
/// coordinator owns and harvests after the scope joins.
type ThreadFinal = (usize, Vec<EpochLink>);

/// One worker's slice of the machine, self-contained for a round.
struct Lane<'a> {
    idx: usize,
    worker: &'a mut PartitionWorker,
    bank: &'a mut Dram,
    tables: &'a mut [TableState],
    /// This lane's clock: the last cycle it ticked or skipped to.
    pos: u64,
    /// Component ticks executed by this lane (simulator instrumentation).
    ticks: u64,
    /// Cycles this lane fast-forwarded over instead of ticking
    /// (simulator instrumentation).
    skips: u64,
    /// Trace events buffered this round, stamped with their cycle.
    trace: Vec<(u64, TxnEvent)>,
}

/// What a lane reports at the round barrier.
struct LaneOut {
    traffic: EpochTraffic,
    /// The lane's next self-known action (`> horizon`), or `None` when the
    /// worker, bank, and queued deliveries are all exhausted.
    hint: Option<u64>,
    pos: u64,
    quiescent: bool,
    trace: Vec<(u64, TxnEvent)>,
}

/// Coordinator commands, published before the round barrier.
#[derive(Clone, Copy)]
enum Cmd {
    /// Run every lane up to and including `horizon`.
    Run { horizon: u64 },
    /// Top every lane up to cycle `to` and exit. `expect_idle` asserts the
    /// machine is quiescent (the audit for the serial loop's exit).
    Finish { to: u64, expect_idle: bool },
}

/// A blocking reusable barrier with panic poisoning: if any participant
/// panics mid-round, the rest unblock and panic too instead of deadlocking
/// under `std::thread::scope`'s implicit join.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    n: usize,
}

struct GateState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl Gate {
    fn new(n: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait(&self) {
        let mut g = self.lock();
        if g.poisoned {
            drop(g);
            panic!("epoch-parallel peer panicked");
        }
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return;
        }
        let generation = g.generation;
        while g.generation == generation && !g.poisoned {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let poisoned = g.poisoned;
        drop(g);
        if poisoned {
            panic!("epoch-parallel peer panicked");
        }
    }

    fn poison(&self) {
        let mut g = self.lock();
        g.poisoned = true;
        self.cv.notify_all();
    }
}

/// Poisons the gate when its owner unwinds, releasing blocked peers.
struct PanicGuard<'a>(&'a Gate);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The earliest cycle `> lane.pos` at which this lane has an event: its
/// worker's own next event, its bank's next completion, or its queue
/// front becoming deliverable — the per-worker slice of the serial
/// scheduler's global `next_event`.
///
/// One deliberate asymmetry: a *quiescent* worker with no queued NoC
/// deliveries never wakes for bank-only events. Those are orphan
/// responses to requests whose transactions already retired (aborts
/// abandon in-flight reads); the serial loop exits at machine quiescence
/// with such responses still in flight, so a lane that kept ticking to
/// drain them would over-account idle cycles past the serial exit cycle.
/// Delivering and draining an orphan is stat-neutral, so *when* it
/// happens (here: only while the lane is otherwise active) is invisible.
fn lane_next(lane: &Lane<'_>, link: &EpochLink) -> Option<u64> {
    let link_next = link.next_ready(lane.pos);
    if link_next.is_none() && lane.worker.is_quiescent() {
        return None;
    }
    if lane.bank.has_buffered_responses() {
        return Some(lane.pos + 1);
    }
    let mut best = lane.worker.next_event(lane.pos);
    if let Some(t) = lane.bank.next_event() {
        let t = t.max(lane.pos + 1);
        best = Some(best.map_or(t, |b| b.min(t)));
    }
    if let Some(t) = link_next {
        best = Some(best.map_or(t, |b| b.min(t)));
    }
    best
}

/// Run one lane through one round: fast-forward from event to event,
/// ticking every cycle `<= horizon` at which the lane could act.
fn run_round(
    lane: &mut Lane<'_>,
    link: &mut EpochLink,
    horizon: u64,
    cat: &Catalogue,
    tracing: bool,
) -> LaneOut {
    let hint = loop {
        match lane_next(lane, link) {
            Some(t) if t <= horizon => {
                let k = t - lane.pos - 1;
                if k > 0 {
                    lane.worker.skip(k);
                    lane.skips += k;
                }
                lane.pos = t;
                lane.ticks += 1;
                lane.bank.tick(t);
                lane.worker.tick(t, lane.bank, cat, link, lane.tables);
                if tracing {
                    for ev in lane.worker.softcore.drain_trace() {
                        lane.trace.push((t, ev));
                    }
                }
            }
            other => break other,
        }
    };
    LaneOut {
        hint,
        pos: lane.pos,
        quiescent: lane.worker.is_quiescent(),
        trace: std::mem::take(&mut lane.trace),
        traffic: link.harvest(),
    }
}

/// Top a lane up to the common exit cycle. With `expect_idle` (the
/// coordinator determined the machine is quiescent) this also audits that
/// nothing was left behind — the parallel counterpart of the serial
/// loop's `is_quiescent` exit check.
fn finish_lane(lane: &mut Lane<'_>, link: &EpochLink, to: u64, expect_idle: bool) {
    debug_assert!(to >= lane.pos, "finish target behind lane position");
    if to > lane.pos {
        lane.worker.skip(to - lane.pos);
        lane.skips += to - lane.pos;
        lane.pos = to;
    }
    if expect_idle {
        debug_assert!(
            lane.worker.is_quiescent(),
            "quiescent finish with a busy worker"
        );
        // Note: the DRAM bank may legitimately still hold in-flight or
        // buffered *orphan* responses here — serial exits at machine
        // quiescence without waiting for them (see `lane_next`).
        debug_assert!(
            link.next_ready(to).is_none(),
            "quiescent finish with a queued NoC delivery"
        );
    }
}

/// The loop a spawned worker thread runs: wait for a command, execute it
/// over this thread's chunk of lanes, repeat until `Finish`.
#[allow(clippy::too_many_arguments)]
fn participant(
    lanes: &mut [Lane<'_>],
    links: &mut [EpochLink],
    gate: &Gate,
    cmd: &Mutex<Cmd>,
    delivery_slots: &[Mutex<Vec<(u64, Packet)>>],
    out_slots: &[Mutex<Option<LaneOut>>],
    cat: &Catalogue,
    tracing: bool,
) {
    loop {
        gate.wait();
        let c = *cmd.lock().expect("cmd lock");
        match c {
            Cmd::Run { horizon } => {
                for (lane, link) in lanes.iter_mut().zip(links.iter_mut()) {
                    let d = std::mem::take(
                        &mut *delivery_slots[lane.idx].lock().expect("delivery lock"),
                    );
                    link.begin_round(d);
                    let out = run_round(lane, link, horizon, cat, tracing);
                    *out_slots[lane.idx].lock().expect("out lock") = Some(out);
                }
                gate.wait();
            }
            Cmd::Finish { to, expect_idle } => {
                for (lane, link) in lanes.iter_mut().zip(links.iter()) {
                    finish_lane(lane, link, to, expect_idle);
                }
                return;
            }
        }
    }
}

impl Machine {
    /// The epoch-parallel phase of [`Machine::run_to_quiescence_limit`]:
    /// advance the machine as far as the lookahead allows on
    /// `sim_threads` real threads, bit-exactly, then return so the serial
    /// loop can apply its uniform exit conditions. See the module docs for
    /// the argument.
    pub(crate) fn run_epochs(&mut self, start: u64, limit: u64) {
        if limit == 0 || self.is_quiescent() {
            return;
        }
        let lookahead = self.noc.min_hop_latency();
        // Never run at or past the crash cycle: the crash cycle must be
        // *ticked* (by the serial loop) so the crash-instant state and the
        // hook's durable snapshot are bit-identical to a serial run.
        let mut cap = start.saturating_add(limit) - 1;
        if let Some(c) = self.fault_plan.crash_at {
            if c <= self.now + 1 {
                return;
            }
            cap = cap.min(c - 1);
        }
        let t0 = if self.any_buffered_responses() {
            Some(self.now + 1)
        } else {
            self.next_event()
        };
        let Some(t0) = t0 else { return };
        if t0 > cap {
            return;
        }

        let nworkers = self.workers.len();
        let threads = self.sim_threads.min(nworkers);
        let tracing = self.trace_sink.enabled();
        let now0 = self.now;
        // Split the machine into disjoint per-worker lanes. The host DRAM
        // view, catalogue, NoC, and trace sink stay with the coordinator.
        let cat = &self.cat;
        let noc = &mut self.noc;
        let sink = &mut self.trace_sink;
        let mut links: Vec<EpochLink> = noc.begin_epoch();
        let mut lanes: Vec<Lane<'_>> = self
            .workers
            .iter_mut()
            .zip(self.banks.iter_mut())
            .zip(self.partitions.iter_mut())
            .enumerate()
            .map(|(idx, ((worker, bank), part))| Lane {
                idx,
                worker,
                bank,
                tables: &mut part.tables,
                pos: now0,
                ticks: 0,
                skips: 0,
                trace: Vec::new(),
            })
            .collect();

        let chunk_size = nworkers.div_ceil(threads);
        let mut lane_chunks: Vec<&mut [Lane<'_>]> = lanes.chunks_mut(chunk_size).collect();
        let my_lanes = lane_chunks.remove(0);
        let mut link_chunks: Vec<Vec<EpochLink>> = Vec::with_capacity(lane_chunks.len());
        let mut my_links: Vec<EpochLink> = links.drain(..my_lanes.len()).collect();
        for chunk in &lane_chunks {
            link_chunks.push(links.drain(..chunk.len()).collect());
        }
        debug_assert!(links.is_empty());

        let gate = Gate::new(lane_chunks.len() + 1);
        let cmd_slot: Mutex<Cmd> = Mutex::new(Cmd::Run { horizon: 0 });
        let delivery_slots: Vec<Mutex<Vec<(u64, Packet)>>> =
            (0..nworkers).map(|_| Mutex::new(Vec::new())).collect();
        let out_slots: Vec<Mutex<Option<LaneOut>>> =
            (0..nworkers).map(|_| Mutex::new(None)).collect();
        // Per spawned thread: (first worker idx, links).
        let final_slots: Vec<Mutex<Option<ThreadFinal>>> =
            (0..lane_chunks.len()).map(|_| Mutex::new(None)).collect();

        let (pending, to, my_links) = std::thread::scope(|s| {
            for (ti, (chunk, mut lnks)) in
                lane_chunks.into_iter().zip(link_chunks).enumerate()
            {
                let gate = &gate;
                let cmd_slot = &cmd_slot;
                let delivery_slots = &delivery_slots[..];
                let out_slots = &out_slots[..];
                let final_slots = &final_slots[..];
                s.spawn(move || {
                    let _guard = PanicGuard(gate);
                    let first_idx = chunk[0].idx;
                    participant(
                        chunk,
                        &mut lnks,
                        gate,
                        cmd_slot,
                        delivery_slots,
                        out_slots,
                        cat,
                        tracing,
                    );
                    *final_slots[ti].lock().expect("final slot") = Some((first_idx, lnks));
                });
            }

            let _guard = PanicGuard(&gate);
            let mut horizon = t0.saturating_add(lookahead - 1).min(cap);
            loop {
                *cmd_slot.lock().expect("cmd lock") = Cmd::Run { horizon };
                gate.wait(); // release the round
                for (lane, link) in my_lanes.iter_mut().zip(my_links.iter_mut()) {
                    let d = std::mem::take(
                        &mut *delivery_slots[lane.idx].lock().expect("delivery lock"),
                    );
                    link.begin_round(d);
                    let out = run_round(lane, link, horizon, cat, tracing);
                    *out_slots[lane.idx].lock().expect("out lock") = Some(out);
                }
                gate.wait(); // all results in

                let outs: Vec<LaneOut> = out_slots
                    .iter()
                    .map(|s| s.lock().expect("out lock").take().expect("lane reported"))
                    .collect();
                let mut all_quiescent = true;
                let mut to = now0;
                let mut hints = Vec::with_capacity(nworkers);
                let mut traffics = Vec::with_capacity(nworkers);
                let mut events: Vec<(u64, TxnEvent)> = Vec::new();
                for mut o in outs {
                    all_quiescent &= o.quiescent;
                    to = to.max(o.pos);
                    hints.push((o.hint, o.traffic.queue_drained()));
                    traffics.push(o.traffic);
                    events.append(&mut o.trace); // worker order
                }
                if tracing {
                    // Serial sink order is (cycle, worker id); the concat
                    // above is worker-ordered, so a stable sort by cycle
                    // reproduces it exactly.
                    events.sort_by_key(|&(c, _)| c);
                    for (_, ev) in &events {
                        sink.txn(ev);
                    }
                }
                let deliveries = noc.merge_epoch(horizon, traffics);

                // The machine's next action: each lane's exit hint, plus —
                // for lanes whose queue ran dry — its earliest fresh
                // delivery (a non-drained queue head-of-line blocks fresh
                // deliveries, and the hint already covers its front).
                let mut next: Option<u64> = None;
                for (w, &(hint, drained)) in hints.iter().enumerate() {
                    let mut na = hint;
                    if drained {
                        if let Some(&(d, _)) = deliveries[w].first() {
                            na = Some(na.map_or(d, |h| h.min(d)));
                        }
                    }
                    if let Some(t) = na {
                        next = Some(next.map_or(t, |b| b.min(t)));
                    }
                }
                match next {
                    Some(t) if t <= cap => {
                        for (w, d) in deliveries.into_iter().enumerate() {
                            *delivery_slots[w].lock().expect("delivery lock") = d;
                        }
                        debug_assert!(t > horizon, "rounds must advance");
                        horizon = t.saturating_add(lookahead - 1).min(cap);
                    }
                    _ => {
                        let expect_idle = all_quiescent && next.is_none();
                        if expect_idle {
                            debug_assert!(
                                deliveries.iter().all(Vec::is_empty),
                                "quiescent exit with undelivered NoC traffic"
                            );
                        }
                        *cmd_slot.lock().expect("cmd lock") = Cmd::Finish { to, expect_idle };
                        gate.wait(); // release peers into Finish
                        for (lane, link) in my_lanes.iter_mut().zip(my_links.iter()) {
                            finish_lane(lane, link, to, expect_idle);
                        }
                        break (deliveries, to, my_links);
                    }
                }
            }
        });

        let mut total_ticks = 0u64;
        for lane in &lanes {
            total_ticks += lane.ticks;
            self.lane_activity[lane.idx].0 += lane.ticks;
            self.lane_activity[lane.idx].1 += lane.skips;
        }
        drop(lanes);
        let mut link_groups: Vec<(usize, Vec<EpochLink>)> = vec![(0, my_links)];
        for slot in final_slots {
            let (first_idx, lnks) = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker thread reported");
            link_groups.push((first_idx, lnks));
        }
        link_groups.sort_by_key(|&(first, _)| first);
        let links_flat: Vec<EpochLink> = link_groups.into_iter().flat_map(|(_, v)| v).collect();
        noc.absorb_epoch(links_flat, pending);
        self.now = to;
        // In parallel mode a "tick" is one *component* tick (a single
        // worker at a single cycle) rather than one whole-machine cycle —
        // like strict-vs-fast, the unit deliberately measures the
        // simulator, not the machine.
        self.ticks_executed += total_ticks;
    }
}
