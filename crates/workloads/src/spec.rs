//! Workload parameters and key-encoding helpers.

/// YCSB parameters (paper §5.3).
#[derive(Debug, Clone)]
pub struct YcsbSpec {
    /// Records per partition (paper: 300 K; default scaled to 100 K).
    pub records_per_partition: u64,
    /// Payload bytes per record (paper: 1 KB; default scaled to 100 B).
    pub payload_len: u32,
    /// Independent DB accesses per transaction (paper: 16, no data
    /// dependencies).
    pub ops_per_txn: usize,
    /// Scan range for the modified scan-only YCSB-E (paper: 50).
    pub scan_len: u32,
    /// Fraction of accesses that target a remote partition in the
    /// multisite experiment (paper Fig. 13: 75%).
    pub remote_fraction: f64,
    /// Override the hash-table bucket count (default: 2x records, which
    /// keeps chains short; the Traverse-stage ablation shrinks it to force
    /// long conflict chains).
    pub hash_buckets: Option<u64>,
}

impl Default for YcsbSpec {
    fn default() -> Self {
        YcsbSpec {
            records_per_partition: 100_000,
            payload_len: 100,
            ops_per_txn: 16,
            scan_len: 50,
            remote_fraction: 0.75,
            hash_buckets: None,
        }
    }
}

impl YcsbSpec {
    /// A miniature spec for unit tests.
    pub fn tiny() -> Self {
        YcsbSpec {
            records_per_partition: 2_000,
            payload_len: 32,
            ..YcsbSpec::default()
        }
    }
}

/// Key-value microbenchmark parameters (paper Fig. 10a: bulk txns of 60
/// inserts or searches).
#[derive(Debug, Clone)]
pub struct KvSpec {
    /// Pre-loaded records per partition (search targets).
    pub records_per_partition: u64,
    /// Payload bytes.
    pub payload_len: u32,
    /// Index operations issued in bulk per transaction (paper: 60).
    pub ops_per_txn: usize,
}

impl Default for KvSpec {
    fn default() -> Self {
        KvSpec {
            records_per_partition: 100_000,
            payload_len: 64,
            ops_per_txn: 60,
        }
    }
}

/// TPC-C parameters (paper §5.3).
#[derive(Debug, Clone)]
pub struct TpccSpec {
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: u64,
    /// Customers per district (TPC-C: 3000).
    pub customers_per_district: u64,
    /// Items / stock entries per warehouse (TPC-C: 100 000; default scaled
    /// to 20 000).
    pub items: u64,
    /// Fraction of NewOrder transactions that touch a remote warehouse
    /// (paper: 1%).
    pub neworder_remote_fraction: f64,
    /// Fraction of Payment transactions for a remote customer (paper: 15%).
    pub payment_remote_fraction: f64,
}

impl Default for TpccSpec {
    fn default() -> Self {
        TpccSpec {
            districts_per_warehouse: 10,
            customers_per_district: 3000,
            items: 20_000,
            neworder_remote_fraction: 0.01,
            payment_remote_fraction: 0.15,
        }
    }
}

impl TpccSpec {
    /// A miniature spec for unit tests.
    pub fn tiny() -> Self {
        TpccSpec {
            customers_per_district: 100,
            items: 500,
            ..TpccSpec::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Composite key packing (TPC-C). One warehouse per partition, so the
// warehouse id also selects the home partition.
// ---------------------------------------------------------------------------

/// `(w_id, d_id)` → district key.
pub fn district_key(w: u64, d: u64) -> u64 {
    w << 32 | d
}

/// `(w_id, d_id, c_id)` → customer key.
pub fn customer_key(w: u64, d: u64, c: u64) -> u64 {
    w << 40 | d << 32 | c
}

/// `(w_id, i_id)` → stock key.
pub fn stock_key(w: u64, i: u64) -> u64 {
    w << 32 | i
}

/// `(w_id, d_id, o_id)` → order key.
pub fn order_key(w: u64, d: u64, o: u64) -> u64 {
    w << 40 | d << 32 | o
}

/// `(w_id, d_id, o_id, ol_number)` → order-line key.
pub fn orderline_key(w: u64, d: u64, o: u64, ol: u64) -> u64 {
    w << 44 | d << 36 | o << 8 | ol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_keys_are_injective_for_tpcc_ranges() {
        let mut seen = std::collections::HashSet::new();
        for w in 0..4u64 {
            for d in 0..10u64 {
                for o in [0u64, 1, 2999, 100_000] {
                    for ol in 0..15u64 {
                        assert!(seen.insert(orderline_key(w, d, o, ol)));
                    }
                }
            }
        }
        assert!(district_key(1, 2) != district_key(2, 1));
        assert!(customer_key(1, 2, 3) != customer_key(3, 2, 1));
        assert!(stock_key(1, 2) != stock_key(2, 1));
        assert!(order_key(0, 1, 5) != order_key(1, 0, 5));
    }

    #[test]
    fn defaults_match_paper_parameters() {
        let y = YcsbSpec::default();
        assert_eq!(y.ops_per_txn, 16);
        assert_eq!(y.scan_len, 50);
        assert!((y.remote_fraction - 0.75).abs() < 1e-9);
        let t = TpccSpec::default();
        assert!((t.neworder_remote_fraction - 0.01).abs() < 1e-9);
        assert!((t.payment_remote_fraction - 0.15).abs() < 1e-9);
        let k = KvSpec::default();
        assert_eq!(k.ops_per_txn, 60);
    }
}
