//! Serving-side workload glue: the five Silo systems behind one handle.
//!
//! The serving subsystem (`bionicdb_bench::serve`) drives live traffic —
//! open-loop arrivals, admission control, deadlines — against the Silo
//! baseline. It needs exactly one thing from the workload layer: "run one
//! transaction of workload X, optionally carrying a cancel token". This
//! module packages the five benchmark mixes behind [`ServeMix`] so the
//! serving engines stay workload-agnostic, mirroring how [`StdWorkload`]
//! packages the BionicDB side for the cross-cutting harnesses.
//!
//! Mix selection is positional (`i` = the request's birth index), exactly
//! like [`SiloWorkload::run`]: a retried request re-runs the *same*
//! transaction kind it was born as, so retries do not skew the mix.

use bionicdb_cpu_model::Tracer;
use bionicdb_silo::CancelToken;
use rand::rngs::SmallRng;

use crate::smallbank::{SmallBankSilo, SmallBankSpec};
use crate::spec::{TpccSpec, YcsbSpec};
use crate::tpcc::{TpccMix, TpccSilo};
use crate::ycsb::YcsbSilo;

#[allow(unused_imports)] // rustdoc links
use crate::abi::{SiloWorkload, StdWorkload};

/// The five serving mixes: one per benchmark family/variant the bench
/// suite reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// YCSB-C: 16 independent point reads (read-only, never aborts).
    YcsbC,
    /// Scan-only YCSB-E over the Masstree-like index (range 50).
    YcsbScan,
    /// TPC-C NewOrder + Payment, 50:50 (write-heavy, multi-table).
    TpccMixed,
    /// TPC-C Payment only (short RMW transactions).
    TpccPayment,
    /// SmallBank standard six-op rotation (short, hot-account RMWs).
    SmallBank,
}

impl ServeKind {
    /// All five mixes, in report order.
    pub const ALL: [ServeKind; 5] = [
        ServeKind::YcsbC,
        ServeKind::YcsbScan,
        ServeKind::TpccMixed,
        ServeKind::TpccPayment,
        ServeKind::SmallBank,
    ];

    /// Stable label (JSON keys, report rows).
    pub fn name(self) -> &'static str {
        match self {
            ServeKind::YcsbC => "ycsb_c",
            ServeKind::YcsbScan => "ycsb_scan",
            ServeKind::TpccMixed => "tpcc_mixed",
            ServeKind::TpccPayment => "tpcc_payment",
            ServeKind::SmallBank => "smallbank",
        }
    }

    /// Parse a label back (CLI `--workload`).
    pub fn parse(s: &str) -> Option<ServeKind> {
        ServeKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Fixed per-mix RNG seed, distinct from the closed-loop bench seeds
    /// so serving runs and model waves never share streams.
    pub fn seed(self) -> u64 {
        match self {
            ServeKind::YcsbC => 0x5E51,
            ServeKind::YcsbScan => 0x5E52,
            ServeKind::TpccMixed => 0x5E53,
            ServeKind::TpccPayment => 0x5E54,
            ServeKind::SmallBank => 0x5E55,
        }
    }
}

/// One loaded Silo system behind a mix-agnostic `run_once`.
pub enum ServeMix {
    /// YCSB database (hash + masstree + skiplist indexes).
    Ycsb {
        /// The loaded system.
        sys: YcsbSilo,
        /// Whether `run_once` scans (YCSB-E) or point-reads (YCSB-C).
        scan: bool,
    },
    /// TPC-C database under a mix.
    Tpcc {
        /// The loaded system.
        sys: TpccSilo,
        /// Which transaction mix to run.
        mix: TpccMix,
    },
    /// SmallBank database (standard rotation).
    SmallBank(SmallBankSilo),
}

impl ServeMix {
    /// Build and load the Silo system for `kind` at serving scale.
    ///
    /// `scale` multiplies the tiny test-scale data size; 1 is enough for
    /// CI (structures still beat the modelled L1/L2), larger values
    /// approach bench scale.
    pub fn build(kind: ServeKind, scale: u64) -> ServeMix {
        match kind {
            ServeKind::YcsbC | ServeKind::YcsbScan => {
                let mut spec = YcsbSpec::tiny();
                spec.records_per_partition *= scale;
                ServeMix::Ycsb {
                    sys: YcsbSilo::build(spec, 2),
                    scan: kind == ServeKind::YcsbScan,
                }
            }
            ServeKind::TpccMixed | ServeKind::TpccPayment => {
                let spec = TpccSpec::tiny();
                let mix = if kind == ServeKind::TpccMixed {
                    TpccMix::Mixed
                } else {
                    TpccMix::PaymentOnly
                };
                ServeMix::Tpcc {
                    sys: TpccSilo::build(spec, 2 * scale),
                    mix,
                }
            }
            ServeKind::SmallBank => {
                let mut spec = SmallBankSpec::tiny();
                spec.accounts_per_partition *= scale;
                ServeMix::SmallBank(SmallBankSilo::build(spec, 2))
            }
        }
    }

    /// Which kind this mix was built as.
    pub fn kind(&self) -> ServeKind {
        match self {
            ServeMix::Ycsb { scan: false, .. } => ServeKind::YcsbC,
            ServeMix::Ycsb { scan: true, .. } => ServeKind::YcsbScan,
            ServeMix::Tpcc {
                mix: TpccMix::PaymentOnly,
                ..
            } => ServeKind::TpccPayment,
            ServeMix::Tpcc { .. } => ServeKind::TpccMixed,
            ServeMix::SmallBank(_) => ServeKind::SmallBank,
        }
    }

    /// Run one transaction of the mix. `i` is the request's birth index
    /// (mix selection — stable across retries); returns `false` on abort.
    ///
    /// Generic over the tracer so the wall-clock engine passes
    /// `NullTracer` and the virtual-time engine passes the calibrated
    /// `CoreModel`, exactly like the closed-loop bench split.
    pub fn run_once<T: Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
        i: usize,
        cancel: Option<&CancelToken>,
    ) -> bool {
        match self {
            ServeMix::Ycsb { sys, scan: false } => sys.run_read_txn(tr, rng, cancel),
            ServeMix::Ycsb { sys, scan: true } => {
                sys.run_scan_txn(tr, rng, sys.masstree, cancel)
            }
            ServeMix::Tpcc { sys, mix } => {
                if mix.neworder_at(i) {
                    sys.run_neworder(tr, rng, cancel)
                } else {
                    sys.run_payment(tr, rng, cancel)
                }
            }
            ServeMix::SmallBank(sb) => sb.run_txn(tr, rng, i, cancel),
        }
    }

    /// Advance the Silo epoch (the serving engines play the epoch thread,
    /// like `silo::runner`).
    pub fn advance_epoch(&self) {
        self.db().advance_epoch();
    }

    fn db(&self) -> &bionicdb_silo::SiloDb {
        match self {
            ServeMix::Ycsb { sys, .. } => &sys.db,
            ServeMix::Tpcc { sys, .. } => &sys.db,
            ServeMix::SmallBank(sb) => &sb.db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_cpu_model::NullTracer;
    use rand::SeedableRng;

    #[test]
    fn every_kind_builds_and_runs() {
        for kind in ServeKind::ALL {
            let mix = ServeMix::build(kind, 1);
            assert_eq!(mix.kind(), kind);
            let mut rng = SmallRng::seed_from_u64(kind.seed());
            let mut ok = 0;
            for i in 0..30 {
                if mix.run_once(&mut NullTracer, &mut rng, i, None) {
                    ok += 1;
                }
            }
            assert!(ok > 0, "{} committed nothing", kind.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in ServeKind::ALL {
            assert_eq!(ServeKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ServeKind::parse("nope"), None);
    }

    #[test]
    fn expired_token_aborts_every_kind() {
        let cancel = CancelToken::manual();
        cancel.cancel();
        for kind in ServeKind::ALL {
            let mix = ServeMix::build(kind, 1);
            let mut rng = SmallRng::seed_from_u64(kind.seed());
            for i in 0..6 {
                assert!(
                    !mix.run_once(&mut NullTracer, &mut rng, i, Some(&cancel)),
                    "{} committed under a fired token",
                    kind.name()
                );
            }
        }
    }
}
