//! A Zipfian key sampler (the standard YCSB request distribution).
//!
//! The paper's YCSB runs use uniform random keys; classic YCSB defaults to
//! a Zipfian distribution with exponent θ = 0.99. This sampler implements
//! the Gray et al. incremental method (used by the YCSB reference
//! implementation): O(1) sampling after O(n) setup, exact for any θ > 0,
//! θ ≠ 1 handled by the generalized harmonic closed form.
//!
//! The skew ablation uses it to show how timestamp CC's dirty-reject
//! behaviour degrades under hot keys — a dimension the paper leaves
//! unexplored.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipfian sampler over `0..n` with exponent `theta`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipf {
    /// Build a sampler over `0..n` (n ≥ 1) with exponent `theta` in (0, 1).
    /// θ → 0 approaches uniform; YCSB's default is 0.99.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "empty key space");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        // Gray et al.'s eta correction only matters for ranks >= 2: `sample`
        // resolves ranks 0 and 1 through early returns that never read
        // `eta`. For n <= 2 the closed form divides by `1 - zeta2/zetan`,
        // which is exactly zero (zeta2 == zetan), producing inf (n == 1) or
        // 0/0 = NaN (n == 2) that used to leak into the struct — masked at
        // sample time, but poisonous to any future arithmetic on `eta`.
        let eta = if n <= 2 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
        }
    }

    /// Draw one key in `0..n` (rank 0 is the hottest key).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// The key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exact probability of rank `k` (for tests).
    pub fn pmf(&self, k: u64) -> f64 {
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range_and_skew_toward_zero() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u64; 100];
        let trials = 200_000;
        for _ in 0..trials {
            let k = z.sample(&mut rng);
            assert!(k < 10_000);
            if k < 100 {
                counts[k as usize] += 1;
            }
        }
        // Rank 0 frequency close to its exact pmf.
        let p0 = counts[0] as f64 / trials as f64;
        let expect0 = z.pmf(0);
        assert!(
            (p0 - expect0).abs() < expect0 * 0.15,
            "rank-0 frequency {p0:.4} vs pmf {expect0:.4}"
        );
        // Monotone-ish decay across the head.
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
    }

    #[test]
    fn low_theta_is_near_uniform() {
        let z = Zipf::new(1_000, 0.05);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0u64;
        let trials = 100_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Uniform would give 10%; near-uniform stays below 20%.
        let frac = head as f64 / trials as f64;
        assert!(frac < 0.2, "head fraction {frac}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.8);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }

    #[test]
    fn tiny_key_spaces_have_finite_eta() {
        // Regression: the eta closed form divides by `1 - zeta2/zetan`,
        // which is 0 for n <= 2. Before the guard, n == 1 produced
        // eta = inf and n == 2 produced eta = NaN — masked only because
        // `sample` happens to resolve ranks 0/1 via early returns.
        for n in [1u64, 2] {
            for theta in [0.05, 0.5, 0.99] {
                let z = Zipf::new(n, theta);
                assert!(
                    z.eta.is_finite(),
                    "eta must be finite for n={n}, theta={theta}, got {}",
                    z.eta
                );
            }
        }
        // n == 3 exercises the real closed form and must stay finite too.
        assert!(Zipf::new(3, 0.99).eta.is_finite());
    }

    #[test]
    fn single_key_space_always_samples_zero() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_key_space_matches_pmf() {
        let z = Zipf::new(2, 0.99);
        let mut rng = SmallRng::seed_from_u64(8);
        let trials = 100_000;
        let mut ones = 0u64;
        for _ in 0..trials {
            let k = z.sample(&mut rng);
            assert!(k < 2);
            ones += k;
        }
        let p1 = ones as f64 / trials as f64;
        let expect1 = z.pmf(1);
        assert!(
            (p1 - expect1).abs() < 0.01,
            "rank-1 frequency {p1:.4} vs pmf {expect1:.4}"
        );
    }
}
