//! TPC-C NewOrder + Payment for both engines (paper §5.3).
//!
//! The paper runs a 50:50 mix of NewOrder and Payment; the database is
//! partitioned by warehouse (one warehouse per partition worker here, as
//! in H-Store-style deployments), the read-only Item table is replicated
//! across partitions, Payment selects customers by id (the paper's
//! modification), and by default 1% of NewOrders and 15% of Payments are
//! cross-partition.
//!
//! ## The BionicDB stored procedures
//!
//! These are the paper's hand-written stored procedures re-created with the
//! [`ProcBuilder`]. Their structure follows the engine's two-phase
//! execution discipline:
//!
//! * **logic phase** — dispatch *every* DB instruction as early as
//!   possible (async, to maximize index pipelining), then perform the
//!   data-dependent work: NewOrder must `RET` the district update
//!   mid-logic to learn `next_o_id` (backing the old value into the
//!   block's UNDO buffer before the in-place increment — paper Fig. 3),
//!   compose the order / order-line keys from it, and dispatch the
//!   inserts. This serializing dependency is exactly why the paper's
//!   Fig. 12b shows no interleaving benefit for TPC-C.
//! * **commit handler** — RET + check every CP register; on any error jump
//!   to the abort handler. Then apply the buffered writes in place (stock
//!   quantity rule, YTD/balance updates), clear dirty bits and overwrite
//!   write timestamps with the begin timestamp (`GETTS`), and COMMIT.
//! * **abort handler** — guided by a progress register, RET whatever was
//!   dispatched, restore the district's `next_o_id` from the UNDO buffer
//!   if it was already incremented, clear dirty marks on granted updates
//!   and tombstone successful inserts, then ABORT.
//!
//! The item loop is unrolled to [`MAX_OL`] iterations with static CP
//! registers (a compiler targeting the softcore must unroll, since CP
//! indices are encoded in the instruction), bounded by the per-transaction
//! `ol_cnt` input.

use bionicdb::{
    BionicConfig, Machine, ProcBuilder, ProcId, SystemBuilder, TableId, TableMeta, TxnBlock,
};
use bionicdb_softcore::isa::{AluOp, Cond, Cp, MemBase, Operand};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::abi::procs::{
    abort_clear_dirty, commit_tuple, ret_or_abort, FLAGS_OFF, PAYLOAD, TOMBSTONE, WRITE_TS_OFF,
};
use crate::abi::assemble;
use crate::spec::{customer_key, district_key, order_key, orderline_key, stock_key, TpccSpec};

/// Maximum order lines per NewOrder (TPC-C: 5–15).
pub const MAX_OL: usize = 15;

/// Which TPC-C transaction mix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccMix {
    /// 50:50 NewOrder : Payment (the paper's overall mix).
    Mixed,
    /// NewOrder only.
    NewOrderOnly,
    /// Payment only.
    PaymentOnly,
}

impl TpccMix {
    /// Whether the `i`-th transaction of a wave is a NewOrder. This is the
    /// single source of the mix ratio: the BionicDB generator and the Silo
    /// twin both call it, so the ratios cannot drift between engines.
    pub fn neworder_at(self, i: usize) -> bool {
        match self {
            TpccMix::Mixed => i.is_multiple_of(2),
            TpccMix::NewOrderOnly => true,
            TpccMix::PaymentOnly => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Table payload layouts (scaled column sets; money in integer cents)
// ---------------------------------------------------------------------------

/// warehouse payload: [ytd, tax‰, pad, pad] (32 B)
pub const WAREHOUSE_PAYLOAD: u32 = 32;
/// district payload: `[next_o_id, ytd, tax permille, next_deliv_o_id]` (32 B)
pub const DISTRICT_PAYLOAD: u32 = 32;
/// customer payload: [balance, ytd_payment, payment_cnt, pad ×5] (64 B)
pub const CUSTOMER_PAYLOAD: u32 = 64;
/// stock payload: [quantity, ytd, order_cnt, remote_cnt] (32 B)
pub const STOCK_PAYLOAD: u32 = 32;
/// item payload: [price, pad] (16 B)
pub const ITEM_PAYLOAD: u32 = 16;
/// orders payload: [c_key, ol_cnt, entry_seq, pad] (32 B)
pub const ORDERS_PAYLOAD: u32 = 32;
/// new_orders payload: `[o_id]` (8 B)
pub const NEWORDERS_PAYLOAD: u32 = 8;
/// order_line payload: [i_id, qty, amount, supply_w] (32 B)
pub const ORDERLINE_PAYLOAD: u32 = 32;
/// history payload: [c_key, amount, pad, pad] (32 B)
pub const HISTORY_PAYLOAD: u32 = 32;

// ---------------------------------------------------------------------------
// NewOrder transaction-block layout (user-area offsets)
// ---------------------------------------------------------------------------

const NO_W_KEY: u64 = 0;
const NO_D_KEY: u64 = 8;
const NO_C_KEY: u64 = 16;
const NO_OL_CNT: u64 = 24;
const NO_OKEY_BASE: u64 = 32;
const NO_OLKEY_BASE: u64 = 40;
const NO_O_ID_OUT: u64 = 48;
const NO_UNDO_NOID: u64 = 56;
const NO_ORDER_PAY: u64 = 64; // 32 B, host-prewritten (c_key, ol_cnt, seq)
const NO_NEWORDER_PAY: u64 = 96; // 8 B, runtime (o_id)
const NO_OKEY_BUF: u64 = 104; // 8 B, runtime (okey_base + o_id)
const NO_ITEMS: u64 = 112;
/// Per-item record stride: i_key, s_key, home, qty, ol_key_buf,
/// ol_payload (32 B at +40).
const NO_ITEM_STRIDE: u64 = 72;
const IT_I_KEY: u64 = 0;
const IT_S_KEY: u64 = 8;
const IT_HOME: u64 = 16;
const IT_QTY: u64 = 24;
const IT_OL_KEY: u64 = 32;
const IT_OL_PAY: u64 = 40; // [i_id, qty, amount, supply_w]

/// User-area size of a NewOrder block.
pub const NO_USER_SIZE: u64 = NO_ITEMS + MAX_OL as u64 * NO_ITEM_STRIDE;

fn it(i: usize, field: u64) -> i64 {
    (NO_ITEMS + i as u64 * NO_ITEM_STRIDE + field) as i64
}

// ---------------------------------------------------------------------------
// Payment transaction-block layout
// ---------------------------------------------------------------------------

const PAY_W_KEY: u64 = 0;
const PAY_D_KEY: u64 = 8;
const PAY_C_KEY: u64 = 16;
const PAY_C_HOME: u64 = 24;
const PAY_H_KEY: u64 = 32;
const PAY_AMOUNT: u64 = 40;
const PAY_H_PAY: u64 = 48; // 32 B host-prewritten
/// User-area size of a Payment block.
pub const PAY_USER_SIZE: u64 = PAY_H_PAY + HISTORY_PAYLOAD as u64;

// ---------------------------------------------------------------------------
// Delivery transaction-block layout (one district per invocation — the
// DORA-style decomposition this partitioned design favours; a full TPC-C
// Delivery is ten of these)
// ---------------------------------------------------------------------------

const DLV_D_KEY: u64 = 0;
const DLV_OKEY_BASE: u64 = 8;
const DLV_OLKEY_BASE: u64 = 16;
const DLV_C_KEY_BUF: u64 = 24; // runtime: customer key from the order row
const DLV_O_ID_OUT: u64 = 32; // delivered order id (0 = queue empty)
const DLV_AMOUNT_OUT: u64 = 40;
const DLV_OKEY_BUF: u64 = 48; // runtime: okey_base + o_id
const DLV_UNDO_NDEL: u64 = 56;
const DLV_OL_KEYS: u64 = 64; // 15 runtime order-line keys
/// User-area size of a Delivery block.
pub const DLV_USER_SIZE: u64 = DLV_OL_KEYS + 8 * MAX_OL as u64;

/// Table handles of the TPC-C schema.
#[derive(Debug, Clone, Copy)]
pub struct TpccTables {
    /// WAREHOUSE.
    pub warehouse: TableId,
    /// DISTRICT.
    pub district: TableId,
    /// CUSTOMER.
    pub customer: TableId,
    /// STOCK.
    pub stock: TableId,
    /// ITEM (replicated read-only).
    pub item: TableId,
    /// ORDERS.
    pub orders: TableId,
    /// NEW-ORDER.
    pub new_orders: TableId,
    /// ORDER-LINE.
    pub order_line: TableId,
    /// HISTORY.
    pub history: TableId,
}

/// Register the TPC-C schema.
pub fn register_tables(b: &mut SystemBuilder, spec: &TpccSpec) -> TpccTables {
    let cust = spec.districts_per_warehouse * spec.customers_per_district;
    TpccTables {
        warehouse: b.table(TableMeta::hash("warehouse", 8, WAREHOUSE_PAYLOAD, 16)),
        district: b.table(TableMeta::hash("district", 8, DISTRICT_PAYLOAD, 64)),
        customer: b.table(TableMeta::hash(
            "customer",
            8,
            CUSTOMER_PAYLOAD,
            (cust * 2).next_power_of_two(),
        )),
        stock: b.table(TableMeta::hash(
            "stock",
            8,
            STOCK_PAYLOAD,
            (spec.items * 2).next_power_of_two(),
        )),
        item: b.table(TableMeta::hash(
            "item",
            8,
            ITEM_PAYLOAD,
            (spec.items * 2).next_power_of_two(),
        )),
        orders: b.table(TableMeta::hash("orders", 8, ORDERS_PAYLOAD, 1 << 16)),
        new_orders: b.table(TableMeta::hash("new_orders", 8, NEWORDERS_PAYLOAD, 1 << 16)),
        order_line: b.table(TableMeta::hash("order_line", 8, ORDERLINE_PAYLOAD, 1 << 18)),
        history: b.table(TableMeta::hash("history", 8, HISTORY_PAYLOAD, 1 << 16)),
    }
}

/// Build the NewOrder stored procedure. With `local_only` the supplying
/// warehouse is always the home partition, so the dispatch loop needs no
/// per-item home loads (the form used by the local-only experiments of
/// paper §5.5).
#[allow(clippy::too_many_lines)]
pub fn build_neworder_proc(t: &TpccTables, local_only: bool) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new(if local_only {
        "tpcc_neworder_local"
    } else {
        "tpcc_neworder"
    });

    // CP registers (static allocation; loop unrolled).
    let c_wh = b.cp();
    let c_di = b.cp();
    let c_cu = b.cp();
    let c_item: Vec<Cp> = (0..MAX_OL).map(|_| b.cp()).collect();
    let c_stock: Vec<Cp> = (0..MAX_OL).map(|_| b.cp()).collect();
    let c_ord = b.cp();
    let c_no = b.cp();
    let c_ol: Vec<Cp> = (0..MAX_OL).map(|_| b.cp()).collect();

    // Long-lived GP registers.
    let g_ts = b.gp();
    let g_cnt = b.gp();
    let g_prog = b.gp(); // 0 = base dispatches, 1 = district applied, 2 = order inserts, 3 = OL dispatched counter valid
    let g_oldone = b.gp();
    let g_oid = b.gp();
    let g_a = b.gp(); // scratch
    let g_b = b.gp();
    let g_c = b.gp();
    let g_zero = b.gp();

    // ---------------- logic ----------------
    b.getts(g_ts);
    b.mov(g_prog, Operand::Imm(0));
    b.mov(g_oldone, Operand::Imm(0));
    b.mov(g_zero, Operand::Imm(0));
    b.load(g_cnt, MemBase::Block, Operand::Imm(NO_OL_CNT as i64));

    // Dispatch the independent lookups first (async — index pipelining).
    b.search(
        t.warehouse,
        Operand::Imm(NO_W_KEY as i64),
        Operand::Imm(-1),
        c_wh,
    );
    b.update(
        t.district,
        Operand::Imm(NO_D_KEY as i64),
        Operand::Imm(-1),
        c_di,
    );
    b.search(
        t.customer,
        Operand::Imm(NO_C_KEY as i64),
        Operand::Imm(-1),
        c_cu,
    );
    // Unrolled item loop: item search (local; ITEM is replicated) + stock
    // update (home read from the block: the supplying warehouse may be
    // remote, paper: 1% of NewOrders).
    let items_done = b.label();
    for i in 0..MAX_OL {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, items_done);
        b.search(
            t.item,
            Operand::Imm(it(i, IT_I_KEY)),
            Operand::Imm(-1),
            c_item[i],
        );
        if local_only {
            b.update(
                t.stock,
                Operand::Imm(it(i, IT_S_KEY)),
                Operand::Imm(-1),
                c_stock[i],
            );
        } else {
            b.load(g_a, MemBase::Block, Operand::Imm(it(i, IT_HOME)));
            b.update(
                t.stock,
                Operand::Imm(it(i, IT_S_KEY)),
                Operand::Reg(g_a),
                c_stock[i],
            );
        }
    }
    b.bind(items_done);

    // District result is needed *now*: the serializing data dependency.
    let g_d = b.gp();
    let fail = b.label();
    b.ret(g_d, c_di)
        .cmp(g_d, Operand::Imm(0))
        .br(Cond::Lt, fail);
    // next_o_id: UNDO-backup, increment in place, remember.
    b.load(g_oid, MemBase::Reg(g_d), Operand::Imm(PAYLOAD)); // LOADA via base reg
    b.store(g_oid, MemBase::Block, Operand::Imm(NO_UNDO_NOID as i64));
    b.mov(g_a, Operand::Reg(g_oid));
    b.add(g_a, Operand::Imm(1));
    b.store(g_a, MemBase::Reg(g_d), Operand::Imm(PAYLOAD));
    b.mov(g_prog, Operand::Imm(1));
    b.store(g_oid, MemBase::Block, Operand::Imm(NO_O_ID_OUT as i64));

    // Compose the order key (okey_base + o_id) in the block, dispatch the
    // order + new-order inserts.
    b.load(g_a, MemBase::Block, Operand::Imm(NO_OKEY_BASE as i64));
    b.add(g_a, Operand::Reg(g_oid));
    b.store(g_a, MemBase::Block, Operand::Imm(NO_OKEY_BUF as i64));
    b.store(g_oid, MemBase::Block, Operand::Imm(NO_NEWORDER_PAY as i64));
    b.insert(
        t.orders,
        Operand::Imm(NO_OKEY_BUF as i64),
        Operand::Imm(NO_ORDER_PAY as i64),
        Operand::Imm(-1),
        c_ord,
    );
    b.insert(
        t.new_orders,
        Operand::Imm(NO_OKEY_BUF as i64),
        Operand::Imm(NO_NEWORDER_PAY as i64),
        Operand::Imm(-1),
        c_no,
    );
    b.mov(g_prog, Operand::Imm(2));

    // Order lines: ol_key = olkey_base + (o_id << 8) + i; amount = price·qty.
    b.load(g_b, MemBase::Block, Operand::Imm(NO_OLKEY_BASE as i64));
    b.mov(g_a, Operand::Reg(g_oid));
    b.alu(AluOp::Mul, g_a, Operand::Imm(256));
    b.add(g_b, Operand::Reg(g_a)); // g_b = olkey_base + (o_id<<8)
    let ol_done = b.label();
    for (i, (&ci, &cl)) in c_item.iter().zip(c_ol.iter()).enumerate() {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, ol_done);
        // ol key.
        b.mov(g_a, Operand::Reg(g_b));
        b.add(g_a, Operand::Imm(i as i64));
        b.store(g_a, MemBase::Block, Operand::Imm(it(i, IT_OL_KEY)));
        // amount = item.price * qty (needs the item search result).
        let g_it = ret_or_abort(&mut b, ci, g_c);
        b.load(g_a, MemBase::Reg(g_it), Operand::Imm(PAYLOAD)); // price
        b.load(g_c, MemBase::Block, Operand::Imm(it(i, IT_QTY)));
        b.alu(AluOp::Mul, g_a, Operand::Reg(g_c));
        b.store(g_a, MemBase::Block, Operand::Imm(it(i, IT_OL_PAY) + 16));
        b.insert(
            t.order_line,
            Operand::Imm(it(i, IT_OL_KEY)),
            Operand::Imm(it(i, IT_OL_PAY)),
            Operand::Imm(-1),
            cl,
        );
        b.add(g_oldone, Operand::Imm(1));
    }
    b.bind(ol_done);
    b.yield_();

    // Voluntary abort trampoline for the logic phase.
    b.bind(fail);
    b.abort();

    // ---------------- commit handler ----------------
    b.begin_commit();
    let g_r = b.gp();
    // Pass 1: validate *every* pending result before touching any data.
    // RET does not consume the CP slot, so the apply pass below re-reads
    // the tuple addresses. The ordering matters for atomicity: the abort
    // handler can tombstone inserts and restore next_o_id, but it cannot
    // undo a stock RMW, so a failure discovered late (e.g. an order-line
    // insert) must be seen before the first stock write is applied.
    ret_or_abort(&mut b, c_wh, g_r);
    ret_or_abort(&mut b, c_cu, g_r);
    ret_or_abort(&mut b, c_ord, g_r);
    ret_or_abort(&mut b, c_no, g_r);
    let v_stocks_done = b.label();
    for (i, &cs) in c_stock.iter().enumerate() {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, v_stocks_done);
        ret_or_abort(&mut b, cs, g_r);
    }
    b.bind(v_stocks_done);
    let v_ols_done = b.label();
    for (i, &cl) in c_ol.iter().enumerate() {
        b.cmp(g_oldone, Operand::Imm(i as i64));
        b.br(Cond::Le, v_ols_done);
        ret_or_abort(&mut b, cl, g_r);
    }
    b.bind(v_ols_done);

    // Pass 2: everything validated non-negative; apply and commit.
    b.ret(g_a, c_ord);
    commit_tuple(&mut b, g_a, g_ts, g_zero);
    b.ret(g_a, c_no);
    commit_tuple(&mut b, g_a, g_ts, g_zero);
    // Stock RMW + commit, per dispatched item.
    let stocks_done = b.label();
    let g_q = b.gp();
    for (i, &cs) in c_stock.iter().enumerate() {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, stocks_done);
        let g_s = g_c;
        b.ret(g_s, cs);
        // quantity rule: q = q - qty; if q < 10 { q += 91 }.
        b.load(g_q, MemBase::Reg(g_s), Operand::Imm(PAYLOAD));
        b.load(g_a, MemBase::Block, Operand::Imm(it(i, IT_QTY)));
        b.alu(AluOp::Sub, g_q, Operand::Reg(g_a));
        let no_refill = b.label();
        b.cmp(g_q, Operand::Imm(10));
        b.br(Cond::Ge, no_refill);
        b.add(g_q, Operand::Imm(91));
        b.bind(no_refill);
        b.store(g_q, MemBase::Reg(g_s), Operand::Imm(PAYLOAD));
        // ytd += qty; order_cnt += 1.
        b.load(g_q, MemBase::Reg(g_s), Operand::Imm(PAYLOAD + 8));
        b.add(g_q, Operand::Reg(g_a));
        b.store(g_q, MemBase::Reg(g_s), Operand::Imm(PAYLOAD + 8));
        b.load(g_q, MemBase::Reg(g_s), Operand::Imm(PAYLOAD + 16));
        b.add(g_q, Operand::Imm(1));
        b.store(g_q, MemBase::Reg(g_s), Operand::Imm(PAYLOAD + 16));
        commit_tuple(&mut b, g_s, g_ts, g_zero);
    }
    b.bind(stocks_done);
    // Order lines.
    let ols_done = b.label();
    for (i, &cl) in c_ol.iter().enumerate() {
        b.cmp(g_oldone, Operand::Imm(i as i64));
        b.br(Cond::Le, ols_done);
        b.ret(g_c, cl);
        commit_tuple(&mut b, g_c, g_ts, g_zero);
    }
    b.bind(ols_done);
    // District: commit the in-place increment done during logic.
    commit_tuple(&mut b, g_d, g_ts, g_zero);
    b.commit();

    // ---------------- abort handler ----------------
    b.begin_abort();
    let g_x = b.gp();
    let g_tomb = b.gp();
    b.mov(g_tomb, Operand::Imm(TOMBSTONE));
    // Reads have no effects; still collect them (RET pairing).
    b.ret(g_x, c_wh);
    b.ret(g_x, c_cu);
    // District: restore next_o_id if the increment was applied, clear dirty.
    let d_skip = b.label();
    b.ret(g_x, c_di);
    b.cmp(g_x, Operand::Imm(0));
    b.br(Cond::Lt, d_skip);
    let undo_skip = b.label();
    b.cmp(g_prog, Operand::Imm(1));
    b.br(Cond::Lt, undo_skip);
    b.load(g_a, MemBase::Block, Operand::Imm(NO_UNDO_NOID as i64));
    b.store(g_a, MemBase::Reg(g_x), Operand::Imm(PAYLOAD));
    b.bind(undo_skip);
    b.store(g_zero, MemBase::Reg(g_x), Operand::Imm(FLAGS_OFF));
    b.bind(d_skip);
    // Items + stocks for i < cnt.
    let a_items_done = b.label();
    for i in 0..MAX_OL {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, a_items_done);
        b.ret(g_x, c_item[i]); // read: no effect
        let s_skip = b.label();
        b.ret(g_x, c_stock[i]);
        b.cmp(g_x, Operand::Imm(0));
        b.br(Cond::Lt, s_skip);
        b.store(g_zero, MemBase::Reg(g_x), Operand::Imm(FLAGS_OFF));
        b.bind(s_skip);
    }
    b.bind(a_items_done);
    // Order / new-order inserts (dispatched only when g_prog >= 2).
    let a_ord_done = b.label();
    b.cmp(g_prog, Operand::Imm(2));
    b.br(Cond::Lt, a_ord_done);
    for &cp in &[c_ord, c_no] {
        let skip = b.label();
        b.ret(g_x, cp);
        b.cmp(g_x, Operand::Imm(0));
        b.br(Cond::Lt, skip);
        b.store(g_tomb, MemBase::Reg(g_x), Operand::Imm(FLAGS_OFF));
        b.bind(skip);
    }
    b.bind(a_ord_done);
    // Order lines actually dispatched.
    let a_ols_done = b.label();
    for (i, &cl) in c_ol.iter().enumerate() {
        b.cmp(g_oldone, Operand::Imm(i as i64));
        b.br(Cond::Le, a_ols_done);
        let skip = b.label();
        b.ret(g_x, cl);
        b.cmp(g_x, Operand::Imm(0));
        b.br(Cond::Lt, skip);
        b.store(g_tomb, MemBase::Reg(g_x), Operand::Imm(FLAGS_OFF));
        b.bind(skip);
    }
    b.bind(a_ols_done);
    b.abort();

    b.build().expect("neworder proc")
}

/// Build the Payment stored procedure (`local_only` skips the customer
/// home-partition load).
pub fn build_payment_proc(t: &TpccTables, local_only: bool) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new(if local_only {
        "tpcc_payment_local"
    } else {
        "tpcc_payment"
    });
    let c_wh = b.cp();
    let c_di = b.cp();
    let c_cu = b.cp();
    let c_hi = b.cp();

    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_h = b.gp();
    let g_amt = b.gp();
    let g_v = b.gp();
    let g_w = b.gp();
    let g_d = b.gp();
    let g_c = b.gp();
    let g_hrec = b.gp();

    // ---------------- logic: dispatch all four ops async ----------------
    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    b.update(
        t.warehouse,
        Operand::Imm(PAY_W_KEY as i64),
        Operand::Imm(-1),
        c_wh,
    );
    b.update(
        t.district,
        Operand::Imm(PAY_D_KEY as i64),
        Operand::Imm(-1),
        c_di,
    );
    if local_only {
        b.update(
            t.customer,
            Operand::Imm(PAY_C_KEY as i64),
            Operand::Imm(-1),
            c_cu,
        );
    } else {
        b.load(g_h, MemBase::Block, Operand::Imm(PAY_C_HOME as i64));
        b.update(
            t.customer,
            Operand::Imm(PAY_C_KEY as i64),
            Operand::Reg(g_h),
            c_cu,
        );
    }
    b.insert(
        t.history,
        Operand::Imm(PAY_H_KEY as i64),
        Operand::Imm(PAY_H_PAY as i64),
        Operand::Imm(-1),
        c_hi,
    );
    b.yield_();

    // ---------------- commit ----------------
    b.begin_commit();
    b.load(g_amt, MemBase::Block, Operand::Imm(PAY_AMOUNT as i64));
    // Validate every result before applying any write: the abort handler
    // can release dirty marks and tombstone the history insert, but it
    // cannot undo a YTD increment, so no data may move until all four
    // operations are known good.
    let g_w = ret_or_abort(&mut b, c_wh, g_w);
    let g_d = ret_or_abort(&mut b, c_di, g_d);
    let g_c = ret_or_abort(&mut b, c_cu, g_c);
    let g_hrec = ret_or_abort(&mut b, c_hi, g_hrec);
    // warehouse.ytd += amount.
    b.load(g_v, MemBase::Reg(g_w), Operand::Imm(PAYLOAD));
    b.add(g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_w), Operand::Imm(PAYLOAD));
    commit_tuple(&mut b, g_w, g_ts, g_zero);
    // district.ytd += amount.
    b.load(g_v, MemBase::Reg(g_d), Operand::Imm(PAYLOAD + 8));
    b.add(g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_d), Operand::Imm(PAYLOAD + 8));
    commit_tuple(&mut b, g_d, g_ts, g_zero);
    // customer: balance -= amount; ytd_payment += amount; payment_cnt += 1.
    b.load(g_v, MemBase::Reg(g_c), Operand::Imm(PAYLOAD));
    b.alu(AluOp::Sub, g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_c), Operand::Imm(PAYLOAD));
    b.load(g_v, MemBase::Reg(g_c), Operand::Imm(PAYLOAD + 8));
    b.add(g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_c), Operand::Imm(PAYLOAD + 8));
    b.load(g_v, MemBase::Reg(g_c), Operand::Imm(PAYLOAD + 16));
    b.add(g_v, Operand::Imm(1));
    b.store(g_v, MemBase::Reg(g_c), Operand::Imm(PAYLOAD + 16));
    commit_tuple(&mut b, g_c, g_ts, g_zero);
    // history insert.
    commit_tuple(&mut b, g_hrec, g_ts, g_zero);
    b.commit();

    // ---------------- abort ----------------
    b.begin_abort();
    let g_x = b.gp();
    let g_tomb = b.gp();
    b.mov(g_tomb, Operand::Imm(TOMBSTONE));
    abort_clear_dirty(&mut b, g_x, g_zero, &[c_wh, c_di, c_cu]);
    let skip = b.label();
    b.ret(g_x, c_hi);
    b.cmp(g_x, Operand::Imm(0));
    b.br(Cond::Lt, skip);
    b.store(g_tomb, MemBase::Reg(g_x), Operand::Imm(FLAGS_OFF));
    b.bind(skip);
    b.abort();

    b.build().expect("payment proc")
}

/// Build the (per-district) Delivery stored procedure — the third TPC-C
/// transaction, which the paper does not evaluate. It pops the oldest
/// undelivered order of one district: reads + advances the district's
/// `next_deliv_o_id`, removes the NEW-ORDER row, reads the order for its
/// customer and line count, sums the order lines, and credits the
/// customer's balance. Everything is local to the district's partition.
#[allow(clippy::too_many_lines)]
pub fn build_delivery_proc(t: &TpccTables) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("tpcc_delivery");
    let c_di = b.cp();
    let c_no = b.cp();
    let c_or = b.cp();
    let c_cu = b.cp();
    let c_ol: Vec<Cp> = (0..MAX_OL).map(|_| b.cp()).collect();

    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_skip = b.gp(); // 1 = empty queue, commit without effects
    let g_prog = b.gp(); // 0 = only district dispatched; 1 = all dispatched
    let g_d = b.gp(); // district tuple address
    let g_cnt = b.gp(); // ol_cnt of the delivered order
    let g_a = b.gp();
    let g_b = b.gp();
    let g_c = b.gp();

    // ---------------- logic ----------------
    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    b.mov(g_skip, Operand::Imm(0));
    b.mov(g_prog, Operand::Imm(0));
    b.mov(g_cnt, Operand::Imm(0));
    b.update(
        t.district,
        Operand::Imm(DLV_D_KEY as i64),
        Operand::Imm(-1),
        c_di,
    );
    let fail = b.label();
    b.ret(g_d, c_di)
        .cmp(g_d, Operand::Imm(0))
        .br(Cond::Lt, fail);
    // queue empty? next_deliv (payload+24) >= next_o_id (payload+0)
    b.load(g_a, MemBase::Reg(g_d), Operand::Imm(PAYLOAD + 24));
    b.load(g_b, MemBase::Reg(g_d), Operand::Imm(PAYLOAD));
    let have_work = b.label();
    b.cmp(g_a, Operand::Reg(g_b));
    b.br(Cond::Lt, have_work);
    b.mov(g_skip, Operand::Imm(1));
    b.store(g_zero, MemBase::Block, Operand::Imm(DLV_O_ID_OUT as i64));
    let to_commit = b.label();
    b.jmp(to_commit);

    b.bind(have_work);
    // o_id := next_deliv; UNDO-backup then advance in place.
    b.store(g_a, MemBase::Block, Operand::Imm(DLV_UNDO_NDEL as i64));
    b.store(g_a, MemBase::Block, Operand::Imm(DLV_O_ID_OUT as i64));
    b.mov(g_b, Operand::Reg(g_a));
    b.add(g_b, Operand::Imm(1));
    b.store(g_b, MemBase::Reg(g_d), Operand::Imm(PAYLOAD + 24));
    // okey = okey_base + o_id; remove NEW-ORDER, read ORDER.
    b.load(g_b, MemBase::Block, Operand::Imm(DLV_OKEY_BASE as i64));
    b.add(g_b, Operand::Reg(g_a));
    b.store(g_b, MemBase::Block, Operand::Imm(DLV_OKEY_BUF as i64));
    b.remove(
        t.new_orders,
        Operand::Imm(DLV_OKEY_BUF as i64),
        Operand::Imm(-1),
        c_no,
    );
    b.search(
        t.orders,
        Operand::Imm(DLV_OKEY_BUF as i64),
        Operand::Imm(-1),
        c_or,
    );
    b.mov(g_prog, Operand::Imm(1));
    // Need the order row now: customer key and line count.
    let g_o = b.gp();
    b.ret(g_o, c_or)
        .cmp(g_o, Operand::Imm(0))
        .br(Cond::Lt, fail);
    b.load(g_c, MemBase::Reg(g_o), Operand::Imm(PAYLOAD)); // c_key
    b.store(g_c, MemBase::Block, Operand::Imm(DLV_C_KEY_BUF as i64));
    b.load(g_cnt, MemBase::Reg(g_o), Operand::Imm(PAYLOAD + 8)); // ol_cnt
    b.update(
        t.customer,
        Operand::Imm(DLV_C_KEY_BUF as i64),
        Operand::Imm(-1),
        c_cu,
    );
    // Order-line searches (unrolled; olkey = olkey_base + o_id*256 + i).
    b.load(g_b, MemBase::Block, Operand::Imm(DLV_OLKEY_BASE as i64));
    b.alu(AluOp::Mul, g_a, Operand::Imm(256));
    b.add(g_b, Operand::Reg(g_a)); // olkey_base + o_id<<8
    let ol_done = b.label();
    for (i, &cl) in c_ol.iter().enumerate() {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, ol_done);
        b.mov(g_a, Operand::Reg(g_b));
        b.add(g_a, Operand::Imm(i as i64));
        b.store(
            g_a,
            MemBase::Block,
            Operand::Imm((DLV_OL_KEYS + 8 * i as u64) as i64),
        );
        b.search(
            t.order_line,
            Operand::Imm((DLV_OL_KEYS + 8 * i as u64) as i64),
            Operand::Imm(-1),
            cl,
        );
    }
    b.bind(ol_done);
    b.mov(g_prog, Operand::Imm(2));
    b.bind(to_commit);
    b.yield_();
    b.bind(fail);
    b.abort();

    // ---------------- commit ----------------
    b.begin_commit();
    let done_empty = b.label();
    // Empty queue: just release the district's dirty mark.
    b.cmp(g_skip, Operand::Imm(1));
    let full_path = b.label();
    b.br(Cond::Lt, full_path);
    b.store(g_zero, MemBase::Reg(g_d), Operand::Imm(FLAGS_OFF));
    b.jmp(done_empty);

    b.bind(full_path);
    // Sum delivered order-line amounts.
    let g_sum = b.gp();
    let g_x = b.gp();
    b.mov(g_sum, Operand::Imm(0));
    let sum_done = b.label();
    for (i, &cl) in c_ol.iter().enumerate() {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, sum_done);
        let g_l = ret_or_abort(&mut b, cl, g_x);
        b.load(g_a, MemBase::Reg(g_l), Operand::Imm(PAYLOAD + 16));
        b.add(g_sum, Operand::Reg(g_a));
    }
    b.bind(sum_done);
    b.store(g_sum, MemBase::Block, Operand::Imm(DLV_AMOUNT_OUT as i64));
    // NEW-ORDER remove: clear dirty, keep tombstone, stamp ts.
    let g_n = ret_or_abort(&mut b, c_no, g_x);
    b.store(g_ts, MemBase::Reg(g_n), Operand::Imm(WRITE_TS_OFF));
    let g_tomb2 = b.gp();
    b.mov(g_tomb2, Operand::Imm(TOMBSTONE));
    b.store(g_tomb2, MemBase::Reg(g_n), Operand::Imm(FLAGS_OFF));
    // Customer: balance += sum, delivery_cnt += 1, commit tuple.
    let g_cu = ret_or_abort(&mut b, c_cu, g_x);
    b.load(g_a, MemBase::Reg(g_cu), Operand::Imm(PAYLOAD));
    b.add(g_a, Operand::Reg(g_sum));
    b.store(g_a, MemBase::Reg(g_cu), Operand::Imm(PAYLOAD));
    b.load(g_a, MemBase::Reg(g_cu), Operand::Imm(PAYLOAD + 24));
    b.add(g_a, Operand::Imm(1));
    b.store(g_a, MemBase::Reg(g_cu), Operand::Imm(PAYLOAD + 24));
    commit_tuple(&mut b, g_cu, g_ts, g_zero);
    // District: the in-place advance happened in logic; commit it.
    commit_tuple(&mut b, g_d, g_ts, g_zero);
    b.bind(done_empty);
    b.commit();

    // ---------------- abort ----------------
    b.begin_abort();
    let g_y = b.gp();
    // District: restore next_deliv if advanced (skip==0 means advanced
    // when we got past the queue check), clear dirty.
    let d_skip = b.label();
    b.ret(g_y, c_di);
    b.cmp(g_y, Operand::Imm(0));
    b.br(Cond::Lt, d_skip);
    let no_undo = b.label();
    b.cmp(g_skip, Operand::Imm(1));
    b.br(Cond::Ge, no_undo);
    b.load(g_a, MemBase::Block, Operand::Imm(DLV_UNDO_NDEL as i64));
    b.store(g_a, MemBase::Reg(g_y), Operand::Imm(PAYLOAD + 24));
    b.bind(no_undo);
    b.store(g_zero, MemBase::Reg(g_y), Operand::Imm(FLAGS_OFF));
    b.bind(d_skip);
    // NEW-ORDER remove + ORDER search were dispatched at g_prog >= 1.
    let a_done = b.label();
    b.cmp(g_prog, Operand::Imm(1));
    b.br(Cond::Lt, a_done);
    // NEW-ORDER remove: restore flags to 0 (undo dirty+tombstone).
    let n_skip = b.label();
    b.ret(g_y, c_no);
    b.cmp(g_y, Operand::Imm(0));
    b.br(Cond::Lt, n_skip);
    b.store(g_zero, MemBase::Reg(g_y), Operand::Imm(FLAGS_OFF));
    b.bind(n_skip);
    b.ret(g_y, c_or); // read: no effect
                      // Customer + order lines were dispatched at g_prog >= 2.
    b.cmp(g_prog, Operand::Imm(2));
    b.br(Cond::Lt, a_done);
    let c_skip = b.label();
    b.ret(g_y, c_cu);
    b.cmp(g_y, Operand::Imm(0));
    b.br(Cond::Lt, c_skip);
    b.store(g_zero, MemBase::Reg(g_y), Operand::Imm(FLAGS_OFF));
    b.bind(c_skip);
    // Order-line reads: collect for pairing.
    let a_ol_done = b.label();
    for (i, &cl) in c_ol.iter().enumerate() {
        b.cmp(g_cnt, Operand::Imm(i as i64));
        b.br(Cond::Le, a_ol_done);
        b.ret(g_y, cl);
    }
    b.bind(a_ol_done);
    b.bind(a_done);
    b.abort();

    b.build().expect("delivery proc")
}

// ---------------------------------------------------------------------------
// The assembled TPC-C system on BionicDB
// ---------------------------------------------------------------------------

/// TPC-C on BionicDB: one warehouse per partition worker.
pub struct TpccBionic {
    /// The machine.
    pub machine: Machine,
    /// Parameters.
    pub spec: TpccSpec,
    /// Table handles.
    pub tables: TpccTables,
    /// NewOrder procedure (homes read from the block).
    pub neworder: ProcId,
    /// Payment procedure (customer home read from the block).
    pub payment: ProcId,
    /// Local-only NewOrder (paper §5.5 form).
    pub neworder_local: ProcId,
    /// Local-only Payment.
    pub payment_local: ProcId,
    /// Per-district Delivery (extension: the paper does not evaluate it).
    pub delivery: ProcId,
    /// Per-worker history key sequence.
    history_seq: Vec<u64>,
    /// Per-worker order entry sequence (for ORDERS payload).
    entry_seq: Vec<u64>,
}

impl TpccBionic {
    /// Build, register and load the TPC-C system.
    pub fn build(cfg: BionicConfig, spec: TpccSpec) -> Self {
        let (machine, h) = assemble(
            cfg,
            |b| {
                let tables = register_tables(b, &spec);
                (
                    tables,
                    b.proc(build_neworder_proc(&tables, false)),
                    b.proc(build_payment_proc(&tables, false)),
                    b.proc(build_neworder_proc(&tables, true)),
                    b.proc(build_payment_proc(&tables, true)),
                    b.proc(build_delivery_proc(&tables)),
                )
            },
            |machine, w, h| {
                let tables = h.0;
                let wid = w as u64;
                let mut loader = machine.loader(w);
                // warehouse: ytd=0, tax=80‰.
                loader.insert(
                    tables.warehouse,
                    &wid.to_le_bytes(),
                    &pack32(&[0, 80, 0, 0]),
                );
                for d in 0..spec.districts_per_warehouse {
                    // district: next_o_id=1, ytd=0, tax=90‰.
                    loader.insert(
                        tables.district,
                        &district_key(wid, d).to_le_bytes(),
                        &pack32(&[1, 0, 90, 1]),
                    );
                    for c in 0..spec.customers_per_district {
                        let key = customer_key(wid, d, c);
                        let mut pay = vec![0u8; CUSTOMER_PAYLOAD as usize];
                        pay[..8].copy_from_slice(&(100_000u64).to_le_bytes()); // balance
                        loader.insert(tables.customer, &key.to_le_bytes(), &pay);
                    }
                }
                for i in 0..spec.items {
                    // item replicated on every partition; price 1..100 cents.
                    let price = (i % 100) + 1;
                    loader.insert(tables.item, &i.to_le_bytes(), &pack16(&[price, 0]));
                    loader.insert(
                        tables.stock,
                        &stock_key(wid, i).to_le_bytes(),
                        &pack32(&[50, 0, 0, 0]),
                    );
                }
            },
        );
        let (tables, neworder, payment, neworder_local, payment_local, delivery) = h;
        let workers = machine.num_workers();
        TpccBionic {
            machine,
            spec,
            tables,
            neworder,
            payment,
            neworder_local,
            payment_local,
            delivery,
            history_seq: vec![0; workers],
            entry_seq: vec![0; workers],
        }
    }

    /// Block size for NewOrder.
    pub fn neworder_block_size() -> u64 {
        bionicdb_softcore::BLOCK_HEADER_SIZE + NO_USER_SIZE
    }

    /// Block size for Payment.
    pub fn payment_block_size() -> u64 {
        bionicdb_softcore::BLOCK_HEADER_SIZE + PAY_USER_SIZE
    }

    /// Populate and submit one NewOrder for `worker`.
    pub fn submit_neworder(&mut self, worker: usize, blk: TxnBlock, rng: &mut SmallRng) {
        let n_workers = self.machine.num_workers();
        let w = worker as u64;
        let d = rng.gen_range(0..self.spec.districts_per_warehouse);
        let c = rng.gen_range(0..self.spec.customers_per_district);
        let ol_cnt = rng.gen_range(5..=MAX_OL as u64);
        let local = self.spec.neworder_remote_fraction == 0.0;
        let m = &mut self.machine;
        m.init_block(
            blk,
            if local {
                self.neworder_local
            } else {
                self.neworder
            },
        );
        m.write_block_u64(blk, NO_W_KEY, w);
        m.write_block_u64(blk, NO_D_KEY, district_key(w, d));
        m.write_block_u64(blk, NO_C_KEY, customer_key(w, d, c));
        m.write_block_u64(blk, NO_OL_CNT, ol_cnt);
        m.write_block_u64(blk, NO_OKEY_BASE, order_key(w, d, 0));
        m.write_block_u64(blk, NO_OLKEY_BASE, orderline_key(w, d, 0, 0));
        // orders payload: [c_key, ol_cnt, entry_seq, 0].
        let seq = self.entry_seq[worker];
        self.entry_seq[worker] += 1;
        let opay = pack32(&[customer_key(w, d, c), ol_cnt, seq, 0]);
        m.write_block(blk, NO_ORDER_PAY, &opay);
        let remote_txn = n_workers > 1 && rng.gen_bool(self.spec.neworder_remote_fraction);
        // TPC-C orders reference *distinct* items (and a repeated item
        // would self-conflict on its own dirty mark under timestamp CC).
        let items = distinct_items(rng, self.spec.items, ol_cnt as usize);
        for (i, &item) in items.iter().enumerate() {
            let qty = rng.gen_range(1..=10u64);
            // TPC-C: a remote NewOrder sources ~one line from another
            // warehouse.
            let supply_w = if remote_txn && i == 0 {
                let mut h = rng.gen_range(0..n_workers as u64 - 1);
                if h >= w {
                    h += 1;
                }
                h
            } else {
                w
            };
            m.write_block_u64(blk, it(i, IT_I_KEY) as u64, item);
            m.write_block_u64(blk, it(i, IT_S_KEY) as u64, stock_key(supply_w, item));
            m.write_block_u64(blk, it(i, IT_HOME) as u64, supply_w);
            m.write_block_u64(blk, it(i, IT_QTY) as u64, qty);
            // ol payload: i_id, qty prewritten; amount filled at runtime.
            m.write_block_u64(blk, it(i, IT_OL_PAY) as u64, item);
            m.write_block_u64(blk, it(i, IT_OL_PAY) as u64 + 8, qty);
            m.write_block_u64(blk, it(i, IT_OL_PAY) as u64 + 24, supply_w);
        }
        m.submit(worker, blk);
    }

    /// Block size for Delivery.
    pub fn delivery_block_size() -> u64 {
        bionicdb_softcore::BLOCK_HEADER_SIZE + DLV_USER_SIZE
    }

    /// Populate and submit one per-district Delivery for `worker`.
    /// Returns the chosen district.
    pub fn submit_delivery(&mut self, worker: usize, blk: TxnBlock, rng: &mut SmallRng) -> u64 {
        let w = worker as u64;
        let d = rng.gen_range(0..self.spec.districts_per_warehouse);
        let m = &mut self.machine;
        m.init_block(blk, self.delivery);
        m.write_block_u64(blk, DLV_D_KEY, district_key(w, d));
        m.write_block_u64(blk, DLV_OKEY_BASE, order_key(w, d, 0));
        m.write_block_u64(blk, DLV_OLKEY_BASE, orderline_key(w, d, 0, 0));
        m.submit(worker, blk);
        d
    }

    /// Populate and submit one Payment for `worker`.
    pub fn submit_payment(&mut self, worker: usize, blk: TxnBlock, rng: &mut SmallRng) {
        let n_workers = self.machine.num_workers();
        let w = worker as u64;
        let d = rng.gen_range(0..self.spec.districts_per_warehouse);
        let c = rng.gen_range(0..self.spec.customers_per_district);
        // 15% of payments pay a customer of a remote warehouse.
        let (c_w, c_home) = if n_workers > 1 && rng.gen_bool(self.spec.payment_remote_fraction) {
            let mut h = rng.gen_range(0..n_workers as u64 - 1);
            if h >= w {
                h += 1;
            }
            (h, h)
        } else {
            (w, w)
        };
        let amount = rng.gen_range(100..=500_000u64); // cents
        let seq = self.history_seq[worker];
        self.history_seq[worker] += 1;
        let local = self.spec.payment_remote_fraction == 0.0;
        let m = &mut self.machine;
        m.init_block(
            blk,
            if local {
                self.payment_local
            } else {
                self.payment
            },
        );
        m.write_block_u64(blk, PAY_W_KEY, w);
        m.write_block_u64(blk, PAY_D_KEY, district_key(w, d));
        m.write_block_u64(blk, PAY_C_KEY, customer_key(c_w, d, c));
        m.write_block_u64(blk, PAY_C_HOME, c_home);
        m.write_block_u64(blk, PAY_H_KEY, (w << 40) | seq);
        m.write_block_u64(blk, PAY_AMOUNT, amount);
        m.write_block(
            blk,
            PAY_H_PAY,
            &pack32(&[customer_key(c_w, d, c), amount, 0, 0]),
        );
        m.submit(worker, blk);
    }
}

/// Sample `n` distinct item ids from `0..items`.
fn distinct_items(rng: &mut SmallRng, items: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let item = rng.gen_range(0..items);
        if !out.contains(&item) {
            out.push(item);
        }
    }
    out
}

fn pack32(v: &[u64; 4]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn pack16(v: &[u64; 2]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

// ---------------------------------------------------------------------------
// Silo driver
// ---------------------------------------------------------------------------

/// TPC-C on the Silo baseline (shared-everything; warehouses only scale the
/// data, exactly like the paper's Silo runs).
pub struct TpccSilo {
    /// The database.
    pub db: bionicdb_silo::SiloDb,
    /// Parameters.
    pub spec: TpccSpec,
    /// Number of warehouses loaded.
    pub warehouses: u64,
    history_seq: std::sync::atomic::AtomicU64,
}

/// Silo-side table indices (same order as [`register_tables`]).
pub mod silo_tables {
    /// WAREHOUSE.
    pub const WAREHOUSE: usize = 0;
    /// DISTRICT.
    pub const DISTRICT: usize = 1;
    /// CUSTOMER.
    pub const CUSTOMER: usize = 2;
    /// STOCK.
    pub const STOCK: usize = 3;
    /// ITEM.
    pub const ITEM: usize = 4;
    /// ORDERS.
    pub const ORDERS: usize = 5;
    /// NEW-ORDER.
    pub const NEW_ORDERS: usize = 6;
    /// ORDER-LINE.
    pub const ORDER_LINE: usize = 7;
    /// HISTORY.
    pub const HISTORY: usize = 8;
}

impl TpccSilo {
    /// Build and load.
    pub fn build(spec: TpccSpec, warehouses: u64) -> Self {
        use bionicdb_silo::{SiloDb, SwIndexKind, TableDef};
        let h = |n: u64| SwIndexKind::Hash {
            buckets: (n * 2).next_power_of_two() as usize,
        };
        let db = SiloDb::new(vec![
            TableDef::new("warehouse", h(warehouses), WAREHOUSE_PAYLOAD as usize),
            TableDef::new("district", h(warehouses * 10), DISTRICT_PAYLOAD as usize),
            TableDef::new(
                "customer",
                h(warehouses * spec.districts_per_warehouse * spec.customers_per_district),
                CUSTOMER_PAYLOAD as usize,
            ),
            TableDef::new("stock", h(warehouses * spec.items), STOCK_PAYLOAD as usize),
            TableDef::new("item", h(spec.items), ITEM_PAYLOAD as usize),
            TableDef::new("orders", h(1 << 16), ORDERS_PAYLOAD as usize),
            TableDef::new("new_orders", h(1 << 16), NEWORDERS_PAYLOAD as usize),
            TableDef::new("order_line", h(1 << 18), ORDERLINE_PAYLOAD as usize),
            TableDef::new("history", h(1 << 16), HISTORY_PAYLOAD as usize),
        ]);
        for w in 0..warehouses {
            db.load(silo_tables::WAREHOUSE, w, pack32(&[0, 80, 0, 0]));
            for d in 0..spec.districts_per_warehouse {
                db.load(
                    silo_tables::DISTRICT,
                    district_key(w, d),
                    pack32(&[1, 0, 90, 1]),
                );
                for c in 0..spec.customers_per_district {
                    let mut pay = vec![0u8; CUSTOMER_PAYLOAD as usize];
                    pay[..8].copy_from_slice(&(100_000u64).to_le_bytes());
                    db.load(silo_tables::CUSTOMER, customer_key(w, d, c), pay);
                }
            }
            for i in 0..spec.items {
                if w == 0 {
                    db.load(silo_tables::ITEM, i, pack16(&[(i % 100) + 1, 0]));
                }
                db.load(silo_tables::STOCK, stock_key(w, i), pack32(&[50, 0, 0, 0]));
            }
        }
        TpccSilo {
            db,
            spec,
            warehouses,
            history_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Run one NewOrder; returns false on abort.
    pub fn run_neworder<T: bionicdb_cpu_model::Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
        cancel: Option<&bionicdb_silo::CancelToken>,
    ) -> bool {
        use silo_tables::*;
        let w = rng.gen_range(0..self.warehouses);
        let d = rng.gen_range(0..self.spec.districts_per_warehouse);
        let c = rng.gen_range(0..self.spec.customers_per_district);
        let ol_cnt = rng.gen_range(5..=MAX_OL as u64);
        let mut txn = self.db.txn();
        if let Some(c) = cancel {
            txn.set_cancel(c.clone());
        }
        let mut buf = Vec::new();

        // Independent lookups can overlap (bounded by the CPU's window).
        tr.begin_group(3);
        if !txn.read(tr, WAREHOUSE, w, &mut buf) {
            return false;
        }
        if !txn.read(tr, CUSTOMER, customer_key(w, d, c), &mut buf) {
            return false;
        }
        tr.end_group();
        // district RMW: serializing dependency (o_id).
        let mut o_id = 0;
        if !txn.modify(tr, DISTRICT, district_key(w, d), |p| {
            o_id = u64::from_le_bytes(p[..8].try_into().unwrap());
            p[..8].copy_from_slice(&(o_id + 1).to_le_bytes());
        }) {
            return false;
        }
        txn.insert(
            ORDERS,
            order_key(w, d, o_id),
            pack32(&[customer_key(w, d, c), ol_cnt, 0, 0]),
        );
        txn.insert(
            NEW_ORDERS,
            order_key(w, d, o_id),
            o_id.to_le_bytes().to_vec(),
        );
        let items = distinct_items(rng, self.spec.items, ol_cnt as usize);
        for (i, &item) in items.iter().enumerate() {
            let i = i as u64;
            let qty = rng.gen_range(1..=10u64);
            tr.begin_group(2);
            if !txn.read(tr, ITEM, item, &mut buf) {
                return false;
            }
            let price = u64::from_le_bytes(buf[..8].try_into().unwrap());
            let ok = txn.modify(tr, STOCK, stock_key(w, item), |p| {
                let q = u64::from_le_bytes(p[..8].try_into().unwrap());
                let mut nq = q.saturating_sub(qty);
                if nq < 10 {
                    nq += 91;
                }
                p[..8].copy_from_slice(&nq.to_le_bytes());
            });
            tr.end_group();
            if !ok {
                return false;
            }
            txn.insert(
                ORDER_LINE,
                orderline_key(w, d, o_id, i),
                pack32(&[item, qty, price * qty, w]),
            );
        }
        txn.commit(tr).is_ok()
    }

    /// Run one Payment; returns false on abort.
    pub fn run_payment<T: bionicdb_cpu_model::Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
        cancel: Option<&bionicdb_silo::CancelToken>,
    ) -> bool {
        use silo_tables::*;
        let w = rng.gen_range(0..self.warehouses);
        let d = rng.gen_range(0..self.spec.districts_per_warehouse);
        let c = rng.gen_range(0..self.spec.customers_per_district);
        let amount = rng.gen_range(100..=500_000u64);
        let mut txn = self.db.txn();
        if let Some(c) = cancel {
            txn.set_cancel(c.clone());
        }
        // Each RMW is a dependent chain; only the lookups themselves can
        // overlap, and the updates write distinct hot records.
        let ok = txn.modify(tr, WAREHOUSE, w, |p| add_u64(p, 0, amount))
            && txn.modify(tr, DISTRICT, district_key(w, d), |p| add_u64(p, 8, amount))
            && txn.modify(tr, CUSTOMER, customer_key(w, d, c), |p| {
                sub_u64(p, 0, amount);
                add_u64(p, 8, amount);
                add_u64(p, 16, 1);
            });
        if !ok {
            return false;
        }
        let seq = self
            .history_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        txn.insert(
            HISTORY,
            (w << 40) | seq,
            pack32(&[customer_key(w, d, c), amount, 0, 0]),
        );
        txn.commit(tr).is_ok()
    }
}

impl TpccSilo {
    /// Run one per-district Delivery; returns `Ok(Some(o_id))` on a
    /// delivered order, `Ok(None)` when the district queue is empty, and
    /// `Err(())`-like `false` wrapped as `None`+abort via the bool.
    pub fn run_delivery<T: bionicdb_cpu_model::Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
    ) -> Option<Option<u64>> {
        use silo_tables::*;
        let w = rng.gen_range(0..self.warehouses);
        let d = rng.gen_range(0..self.spec.districts_per_warehouse);
        let mut txn = self.db.txn();
        let mut buf = Vec::new();
        if !txn.read(tr, DISTRICT, district_key(w, d), &mut buf) {
            return None;
        }
        let next_o = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let next_deliv = u64::from_le_bytes(buf[24..32].try_into().unwrap());
        if next_deliv >= next_o {
            return txn.commit(tr).ok().map(|_| None);
        }
        let o_id = next_deliv;
        buf[24..32].copy_from_slice(&(o_id + 1).to_le_bytes());
        let district_img = buf.clone();
        if !txn.update(tr, DISTRICT, district_key(w, d), &district_img) {
            return None;
        }
        // Consume the NEW-ORDER row (logical delete = overwrite sentinel;
        // the hash index has no remove, so mark it delivered).
        if !txn.modify(tr, NEW_ORDERS, order_key(w, d, o_id), |p| {
            p[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        }) {
            return None;
        }
        if !txn.read(tr, ORDERS, order_key(w, d, o_id), &mut buf) {
            return None;
        }
        let c_key = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let ol_cnt = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let mut total = 0u64;
        for ol in 0..ol_cnt {
            if !txn.read(tr, ORDER_LINE, orderline_key(w, d, o_id, ol), &mut buf) {
                return None;
            }
            total += u64::from_le_bytes(buf[16..24].try_into().unwrap());
        }
        if !txn.modify(tr, CUSTOMER, c_key, |p| {
            add_u64(p, 0, total);
            add_u64(p, 24, 1);
        }) {
            return None;
        }
        txn.commit(tr).ok().map(|_| Some(o_id))
    }
}

fn add_u64(p: &mut [u8], off: usize, v: u64) {
    let x = u64::from_le_bytes(p[off..off + 8].try_into().unwrap());
    p[off..off + 8].copy_from_slice(&(x + v).to_le_bytes());
}

fn sub_u64(p: &mut [u8], off: usize, v: u64) {
    let x = u64::from_le_bytes(p[off..off + 8].try_into().unwrap());
    p[off..off + 8].copy_from_slice(&x.wrapping_sub(v).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb::{BlockStatus, RetryBudget, TxnStatus};
    use bionicdb_cpu_model::NullTracer;
    use rand::SeedableRng;

    fn tiny() -> TpccBionic {
        TpccBionic::build(BionicConfig::small(2), TpccSpec::tiny())
    }

    #[test]
    fn procs_validate() {
        let mut b = SystemBuilder::new(BionicConfig::small(1));
        let t = register_tables(&mut b, &TpccSpec::tiny());
        for local in [false, true] {
            build_neworder_proc(&t, local).validate().unwrap();
            build_payment_proc(&t, local).validate().unwrap();
        }
    }

    #[test]
    fn neworder_commits_and_installs_rows() {
        let mut sys = tiny();
        let mut rng = SmallRng::seed_from_u64(7);
        let blk = sys
            .machine
            .alloc_block(0, TpccBionic::neworder_block_size());
        sys.submit_neworder(0, blk, &mut rng);
        sys.machine.run_to_quiescence_limit(1 << 27);
        assert_eq!(sys.machine.block_status(blk), TxnStatus::Committed);

        // o_id was 1 (fresh district); the order row must exist, committed.
        let o_id = sys.machine.read_block_u64(blk, NO_O_ID_OUT);
        assert_eq!(o_id, 1);
        let d_key_raw = sys.machine.read_block_u64(blk, NO_D_KEY);
        let okey = sys.machine.read_block_u64(blk, NO_OKEY_BUF);
        let tables = sys.tables;
        let loader = sys.machine.loader(0);
        let oaddr = loader
            .lookup(tables.orders, &okey.to_le_bytes())
            .expect("order row");
        let opay = loader.payload(tables.orders, oaddr);
        let ol_cnt = u64::from_le_bytes(opay[8..16].try_into().unwrap());
        assert!((5..=15).contains(&ol_cnt));
        // District next_o_id advanced to 2.
        let daddr = loader
            .lookup(tables.district, &d_key_raw.to_le_bytes())
            .unwrap();
        let dpay = loader.payload(tables.district, daddr);
        assert_eq!(u64::from_le_bytes(dpay[..8].try_into().unwrap()), 2);
        // All order lines exist.
        let w = 0u64;
        let d = d_key_raw & 0xffff_ffff;
        for i in 0..ol_cnt {
            let olk = orderline_key(w, d, o_id, i);
            assert!(
                loader
                    .lookup(tables.order_line, &olk.to_le_bytes())
                    .is_some(),
                "order line {i}"
            );
        }
        // The committed rows are clean (not dirty).
        let hdr = bionicdb_coproc::layout::read_header(
            sys.machine.dram(),
            oaddr + bionicdb_coproc::layout::TUPLE_HEADER,
        );
        assert!(!hdr.is_dirty());
    }

    #[test]
    fn payment_commits_and_moves_money() {
        let mut sys = tiny();
        let mut rng = SmallRng::seed_from_u64(8);
        let blk = sys.machine.alloc_block(1, TpccBionic::payment_block_size());
        sys.submit_payment(1, blk, &mut rng);
        sys.machine.run_to_quiescence_limit(1 << 27);
        assert_eq!(sys.machine.block_status(blk), TxnStatus::Committed);

        let amount = sys.machine.read_block_u64(blk, PAY_AMOUNT);
        let w_key = sys.machine.read_block_u64(blk, PAY_W_KEY);
        let tables = sys.tables;
        let loader = sys.machine.loader(1);
        let waddr = loader
            .lookup(tables.warehouse, &w_key.to_le_bytes())
            .unwrap();
        let wpay = loader.payload(tables.warehouse, waddr);
        assert_eq!(
            u64::from_le_bytes(wpay[..8].try_into().unwrap()),
            amount,
            "w_ytd"
        );
    }

    #[test]
    fn remote_payment_crosses_noc_and_commits() {
        let mut sys = tiny();
        // Force remoteness.
        sys.spec.payment_remote_fraction = 1.0;
        let mut rng = SmallRng::seed_from_u64(9);
        let blk = sys.machine.alloc_block(0, TpccBionic::payment_block_size());
        sys.submit_payment(0, blk, &mut rng);
        sys.machine.run_to_quiescence_limit(1 << 27);
        assert_eq!(sys.machine.block_status(blk), TxnStatus::Committed);
        assert!(
            sys.machine.noc().stats().sent >= 2,
            "customer update was remote"
        );
        // Remote customer's balance decreased.
        let c_key = sys.machine.read_block_u64(blk, PAY_C_KEY);
        let amount = sys.machine.read_block_u64(blk, PAY_AMOUNT);
        let tables = sys.tables;
        let loader = sys.machine.loader(1);
        let caddr = loader
            .lookup(tables.customer, &c_key.to_le_bytes())
            .unwrap();
        let cpay = loader.payload(tables.customer, caddr);
        let balance = u64::from_le_bytes(cpay[..8].try_into().unwrap());
        assert_eq!(balance, 100_000u64.wrapping_sub(amount));
    }

    #[test]
    fn mixed_batch_preserves_invariants_under_conflicts() {
        // Interleaved batches of NewOrder+Payment *will* conflict sometimes
        // (two NewOrders of one batch touching the same district: the
        // second sees the dirty mark and aborts — paper §4.7). The engine
        // must finish every transaction and keep the database consistent.
        let mut sys = tiny();
        let mut rng = SmallRng::seed_from_u64(10);
        let mut no_blocks = Vec::new();
        let mut pay_blocks = Vec::new();
        let mut no_workers = Vec::new();
        let mut pay_workers = Vec::new();
        for w in 0..2 {
            for i in 0..8 {
                if i % 2 == 0 {
                    let blk = sys
                        .machine
                        .alloc_block(w, TpccBionic::neworder_block_size());
                    sys.submit_neworder(w, blk, &mut rng);
                    no_blocks.push(blk);
                    no_workers.push(w);
                } else {
                    let blk = sys.machine.alloc_block(w, TpccBionic::payment_block_size());
                    sys.submit_payment(w, blk, &mut rng);
                    pay_blocks.push(blk);
                    pay_workers.push(w);
                }
            }
        }
        sys.machine.run_to_quiescence_limit(1 << 28);
        let st = sys.machine.stats();
        assert_eq!(st.committed + st.aborted, 16, "every transaction finished");
        assert!(
            st.aborted > 0,
            "the warehouse hotspot causes dirty-rejects in a batch"
        );

        // Client-side retry: resubmit aborted blocks (inputs are preserved
        // in the block, §4.8) under a bounded budget until everything
        // commits.
        let all: Vec<(usize, TxnBlock)> = no_workers
            .iter()
            .copied()
            .zip(no_blocks.iter().copied())
            .chain(pay_workers.iter().copied().zip(pay_blocks.iter().copied()))
            .collect();
        let out = sys.machine.retry_to_completion(
            &all,
            RetryBudget {
                max_attempts: 64,
                backoff_cycles: 0,
            },
            1 << 28,
        );
        assert!(out.all_committed(), "retries must converge: {out:?}");
        assert_eq!(out.committed, 16);

        // Committed NewOrders installed their order rows; aborted ones are
        // invisible (never inserted or tombstoned).
        let tables = sys.tables;
        let mut committed_orders = 0;
        for &blk in &no_blocks {
            let okey = sys.machine.read_block_u64(blk, NO_OKEY_BUF);
            let committed = sys.machine.block_status(blk).is_committed();
            // Which worker owns the warehouse of this order key?
            let w = (okey >> 40) as usize;
            let found = sys
                .machine
                .loader(w)
                .lookup(tables.orders, &okey.to_le_bytes());
            if committed {
                assert!(found.is_some(), "committed order row present");
                committed_orders += 1;
            } else {
                assert!(found.is_none(), "aborted order row invisible");
            }
        }
        // District next_o_id advanced exactly once per committed NewOrder.
        let mut advanced = 0;
        for w in 0..2u64 {
            for d in 0..sys.spec.districts_per_warehouse {
                let loader = sys.machine.loader(w as usize);
                let daddr = loader
                    .lookup(tables.district, &district_key(w, d).to_le_bytes())
                    .unwrap();
                let pay = loader.payload(tables.district, daddr);
                advanced += u64::from_le_bytes(pay[..8].try_into().unwrap()) - 1;
            }
        }
        assert_eq!(
            advanced, committed_orders,
            "next_o_id advances match committed orders"
        );
    }

    #[test]
    fn silo_tpcc_transactions_commit() {
        let sys = TpccSilo::build(TpccSpec::tiny(), 2);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut no = 0;
        let mut pay = 0;
        for _ in 0..50 {
            if sys.run_neworder(&mut NullTracer, &mut rng, None) {
                no += 1;
            }
            if sys.run_payment(&mut NullTracer, &mut rng, None) {
                pay += 1;
            }
        }
        assert_eq!(
            (no, pay),
            (50, 50),
            "uncontended single-thread run commits all"
        );
    }

    #[test]
    fn silo_neworder_advances_district_o_id() {
        let sys = TpccSilo::build(TpccSpec::tiny(), 1);
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..10 {
            assert!(sys.run_neworder(&mut NullTracer, &mut rng, None));
        }
        // Sum of (next_o_id - 1) over districts equals 10 NewOrders.
        let mut total = 0;
        let mut buf = Vec::new();
        for d in 0..sys.spec.districts_per_warehouse {
            let mut t = sys.db.txn();
            t.read(
                &mut NullTracer,
                silo_tables::DISTRICT,
                district_key(0, d),
                &mut buf,
            );
            total += u64::from_le_bytes(buf[..8].try_into().unwrap()) - 1;
        }
        assert_eq!(total, 10);
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;
    use bionicdb::{BlockStatus, TxnStatus};
    use bionicdb_cpu_model::NullTracer;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> TpccBionic {
        TpccBionic::build(BionicConfig::small(1), TpccSpec::tiny())
    }

    /// Force a NewOrder into district `d` by retrying the RNG seed space.
    fn neworder_in_district(sys: &mut TpccBionic, d: u64, seed: &mut u64) -> TxnBlock {
        loop {
            *seed += 1;
            let mut rng = SmallRng::seed_from_u64(*seed);
            // Peek which district this seed draws (same sequence as
            // submit_neworder: first draw is the district).
            use rand::Rng;
            let dd = rng.gen_range(0..sys.spec.districts_per_warehouse);
            if dd != d {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(*seed);
            let blk = sys
                .machine
                .alloc_block(0, TpccBionic::neworder_block_size());
            sys.submit_neworder(0, blk, &mut rng);
            sys.machine.run_to_quiescence_limit(1 << 27);
            assert!(sys.machine.block_status(blk).is_committed());
            return blk;
        }
    }

    fn submit_delivery_in_district(sys: &mut TpccBionic, d: u64, seed: &mut u64) -> TxnBlock {
        loop {
            *seed += 1;
            let mut rng = SmallRng::seed_from_u64(*seed);
            use rand::Rng;
            let dd = rng.gen_range(0..sys.spec.districts_per_warehouse);
            if dd != d {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(*seed);
            let blk = sys
                .machine
                .alloc_block(0, TpccBionic::delivery_block_size());
            sys.submit_delivery(0, blk, &mut rng);
            sys.machine.run_to_quiescence_limit(1 << 27);
            return blk;
        }
    }

    #[test]
    fn delivery_pops_the_oldest_order_and_credits_the_customer() {
        let mut sys = tiny();
        let mut seed = 1000u64;
        let d = 3u64;
        let no_blk = neworder_in_district(&mut sys, d, &mut seed);
        let o_id = sys.machine.read_block_u64(no_blk, NO_O_ID_OUT);
        let c_key = sys.machine.read_block_u64(no_blk, NO_C_KEY);
        let tables = sys.tables;
        let balance_before = {
            let loader = sys.machine.loader(0);
            let addr = loader
                .lookup(tables.customer, &c_key.to_le_bytes())
                .unwrap();
            u64::from_le_bytes(
                loader.payload(tables.customer, addr)[..8]
                    .try_into()
                    .unwrap(),
            )
        };

        let dlv = submit_delivery_in_district(&mut sys, d, &mut seed);
        assert_eq!(sys.machine.block_status(dlv), TxnStatus::Committed);
        assert_eq!(sys.machine.read_block_u64(dlv, DLV_O_ID_OUT), o_id);
        let amount = sys.machine.read_block_u64(dlv, DLV_AMOUNT_OUT);
        assert!(amount > 0, "delivered order has a positive total");

        // Customer credited by exactly the order-line total.
        let loader = sys.machine.loader(0);
        let addr = loader
            .lookup(tables.customer, &c_key.to_le_bytes())
            .unwrap();
        let pay = loader.payload(tables.customer, addr);
        let balance_after = u64::from_le_bytes(pay[..8].try_into().unwrap());
        assert_eq!(balance_after, balance_before + amount);
        let deliveries = u64::from_le_bytes(pay[24..32].try_into().unwrap());
        assert_eq!(deliveries, 1);
        // NEW-ORDER row removed (tombstoned).
        let okey = order_key(0, d, o_id);
        assert!(loader
            .lookup(tables.new_orders, &okey.to_le_bytes())
            .is_none());
        // The ORDER row itself remains.
        assert!(loader.lookup(tables.orders, &okey.to_le_bytes()).is_some());
    }

    #[test]
    fn delivery_on_empty_district_commits_without_effects() {
        let mut sys = tiny();
        let mut seed = 5000u64;
        let dlv = submit_delivery_in_district(&mut sys, 7, &mut seed);
        assert_eq!(sys.machine.block_status(dlv), TxnStatus::Committed);
        assert_eq!(
            sys.machine.read_block_u64(dlv, DLV_O_ID_OUT),
            0,
            "queue empty"
        );
        // District stays clean and deliverable.
        let tables = sys.tables;
        let loader = sys.machine.loader(0);
        let addr = loader
            .lookup(tables.district, &district_key(0, 7).to_le_bytes())
            .unwrap();
        let pay = loader.payload(tables.district, addr);
        assert_eq!(
            u64::from_le_bytes(pay[24..32].try_into().unwrap()),
            1,
            "next_deliv untouched"
        );
    }

    #[test]
    fn deliveries_drain_a_district_in_order() {
        let mut sys = tiny();
        let mut seed = 9000u64;
        let d = 1u64;
        for _ in 0..3 {
            neworder_in_district(&mut sys, d, &mut seed);
        }
        let mut delivered = Vec::new();
        for _ in 0..4 {
            let dlv = submit_delivery_in_district(&mut sys, d, &mut seed);
            assert_eq!(sys.machine.block_status(dlv), TxnStatus::Committed);
            delivered.push(sys.machine.read_block_u64(dlv, DLV_O_ID_OUT));
        }
        assert_eq!(delivered, vec![1, 2, 3, 0], "oldest-first, then empty");
    }

    #[test]
    fn silo_delivery_matches_semantics() {
        let sys = TpccSilo::build(TpccSpec::tiny(), 1);
        let mut rng = SmallRng::seed_from_u64(17);
        // Create some orders.
        for _ in 0..6 {
            assert!(sys.run_neworder(&mut NullTracer, &mut rng, None));
        }
        let mut delivered = 0;
        let mut empties = 0;
        for _ in 0..80 {
            match sys.run_delivery(&mut NullTracer, &mut rng) {
                Some(Some(_)) => delivered += 1,
                Some(None) => empties += 1,
                None => panic!("delivery aborted single-threaded"),
            }
        }
        assert_eq!(delivered, 6, "every order eventually delivered");
        assert!(empties > 0);
    }
}
