//! The workload ABI: every stored-procedure workload behind one trait.
//!
//! The paper's softcore executes *pre-compiled stored procedures* (§4.5,
//! Table 2); the engine neither knows nor cares which benchmark the
//! procedures implement. This module makes the reproduction match that
//! separation: a [`Workload`] declares its schema, procedures and
//! per-worker transaction generation, and the single generic driver
//! (`bionicdb_bench::drive`) owns batch fill, submission, execution under
//! any [`bionicdb::ExecMode`], client-side retry and stats collection.
//!
//! ## Contract
//!
//! A `Workload` implementation may touch only:
//!
//! * its own module (procedure builders via [`bionicdb_softcore::builder`],
//!   block layouts, generators) — see `smallbank.rs` for the reference
//!   shape;
//! * the [`SystemBuilder`] registration surface (tables + procs), routed
//!   through [`assemble`] so config plumbing stays in one place.
//!
//! It must **not** touch the engine crates (`core`, `coproc`, `fpga`,
//! `noc`): if a workload needs an engine change, that is an engine PR, not
//! a workload. SmallBank was added under exactly this rule.
//!
//! ## Determinism
//!
//! The driver seeds one `SmallRng` from [`Workload::seed`] and consumes it
//! in submission order (worker-major, index-ascending), so a fixed seed
//! produces a byte-identical `MachineReport` under strict, fast-forward
//! and epoch-parallel execution at any thread count. The legacy runner
//! seeds are preserved by the adapters below; `workloadcheck` pins the
//! refactor to goldens captured from the pre-ABI hand-rolled loops.
//!
//! Every workload also carries a [`SiloWorkload`] twin so BionicDB-vs-Silo
//! comparisons run the same transaction mix from the same generator logic
//! (mix selection like [`TpccMix::neworder_at`] lives in one place and
//! cannot drift between engines).

use std::borrow::BorrowMut;

use bionicdb::{BionicConfig, Machine, RetryBudget, SystemBuilder, TxnBlock};
use bionicdb_cpu_model::CoreModel;
use rand::rngs::SmallRng;

use crate::smallbank::{SmallBankBionic, SmallBankSpec, SmallBankWorkload};
use crate::spec::{TpccSpec, YcsbSpec};
use crate::tpcc::{TpccBionic, TpccMix, TpccSilo};
use crate::ycsb::{YcsbBionic, YcsbKind, YcsbSilo};

/// A stored-procedure workload on BionicDB, as seen by the generic driver.
///
/// Implementations wrap an assembled machine (schema loaded, procedures
/// registered) plus whatever per-worker generator state the workload needs
/// (sequence counters, skew samplers). The driver calls methods in this
/// order per wave: [`block_size`](Workload::block_size) (allocation,
/// worker-major), [`submit`](Workload::submit) (fill + submit, worker-major
/// with one shared RNG), then run/retry, then
/// [`validate`](Workload::validate).
pub trait Workload {
    /// Short label (used in reports and test output).
    fn name(&self) -> &'static str;

    /// The machine under test.
    fn machine(&mut self) -> &mut Machine;

    /// Read-only access to the machine (report rendering).
    fn machine_ref(&self) -> &Machine;

    /// Fixed RNG seed for a driver wave.
    fn seed(&self) -> u64;

    /// Block bytes for worker `worker`'s `i`-th transaction of a wave
    /// (warm-up waves use indices `0..warmup` of the same function).
    fn block_size(&self, worker: usize, i: usize) -> u64;

    /// Populate `blk` as worker `worker`'s `i`-th transaction and submit
    /// it. `rng` is the wave's shared generator: consume it only here, in
    /// driver submission order.
    fn submit(&mut self, worker: usize, i: usize, blk: TxnBlock, rng: &mut SmallRng);

    /// Index operations per transaction (KV bulk transactions report
    /// operation throughput; everything else transaction throughput).
    fn ops_per_txn(&self) -> u64 {
        1
    }

    /// Warm-up transactions per worker to run (and discard) before the
    /// measured wave.
    fn warmup(&self, txns_per_worker: usize) -> usize {
        let _ = txns_per_worker;
        0
    }

    /// Whether the measured wave reports the abort-counter delta (bulk
    /// loading waves report 0 by convention).
    fn count_aborts(&self) -> bool {
        true
    }

    /// Client-side retry budget: `Some` makes the driver retry aborted
    /// blocks to completion and count every submitted transaction as
    /// committed (the TPC-C convention).
    fn retry(&self) -> Option<RetryBudget> {
        None
    }

    /// Post-wave invariant hook (e.g. SmallBank money conservation).
    /// Runs after the wave fully commits; panics on violation.
    fn validate(&mut self) {}
}

/// A workload body for the Silo baseline: one transaction per call under
/// the calibrated core model. `i` is the wave index (mix selection);
/// returns `false` on abort.
pub trait SiloWorkload {
    /// Fixed RNG seed for a model wave.
    fn seed(&self) -> u64;

    /// Run the `i`-th transaction of a wave.
    fn run(&self, model: &mut CoreModel, rng: &mut SmallRng, i: usize) -> bool;
}

// ---------------------------------------------------------------------------
// Commit-discipline helpers for procedure builders
// ---------------------------------------------------------------------------

/// Shared [`bionicdb::ProcBuilder`] idioms for the engine's two-phase
/// execution discipline (paper §4.7): validate every CP result before
/// applying any write; on commit stamp write timestamps and clear dirty
/// bits per touched tuple; on abort release dirty marks on whatever was
/// granted. TPC-C and SmallBank both build their procedures from these.
pub mod procs {
    use bionicdb::ProcBuilder;
    use bionicdb_coproc::layout::{TUPLE_HEADER, TUPLE_PAYLOAD};
    use bionicdb_softcore::isa::{Cond, Cp, Gp, MemBase, Operand};

    /// Write-timestamp offset relative to a CP-returned tuple address
    /// (hash tuples: header behind the chain pointer).
    pub const WRITE_TS_OFF: i64 = TUPLE_HEADER as i64;
    /// Flags-word offset relative to a CP-returned tuple address.
    pub const FLAGS_OFF: i64 = (TUPLE_HEADER + 16) as i64;
    /// First payload byte relative to a CP-returned tuple address.
    pub const PAYLOAD: i64 = TUPLE_PAYLOAD as i64;
    /// Tombstone flag value (aborted inserts).
    pub const TOMBSTONE: i64 = 2;

    /// Emit `RET cp` + error check, jumping to the abort handler on
    /// failure. Returns the GP holding the tuple address.
    pub fn ret_or_abort(b: &mut ProcBuilder, cp: Cp, into: Gp) -> Gp {
        let abort = b.abort_label();
        b.ret(into, cp)
            .cmp(into, Operand::Imm(0))
            .br(Cond::Lt, abort);
        into
    }

    /// Clear the dirty flag and stamp the write timestamp of the tuple
    /// whose address is in `addr` (the commit handler's per-tuple
    /// write-set walk).
    pub fn commit_tuple(b: &mut ProcBuilder, addr: Gp, ts: Gp, zero: Gp) {
        b.store(ts, MemBase::Reg(addr), Operand::Imm(WRITE_TS_OFF));
        b.store(zero, MemBase::Reg(addr), Operand::Imm(FLAGS_OFF));
    }

    /// Abort-handler walk: for each update CP, clear the dirty mark if the
    /// operation was granted (`addr >= 0`), else skip.
    pub fn abort_clear_dirty(b: &mut ProcBuilder, scratch: Gp, zero: Gp, cps: &[Cp]) {
        for &cp in cps {
            let skip = b.label();
            b.ret(scratch, cp);
            b.cmp(scratch, Operand::Imm(0));
            b.br(Cond::Lt, skip);
            b.store(zero, MemBase::Reg(scratch), Operand::Imm(FLAGS_OFF));
            b.bind(skip);
        }
    }
}

// ---------------------------------------------------------------------------
// Machine assembly
// ---------------------------------------------------------------------------

/// Assemble a machine: register tables + procedures, build, then load every
/// partition. All workload builds route their [`SystemBuilder`]/
/// [`BionicConfig`] plumbing through here.
pub fn assemble<T>(
    cfg: BionicConfig,
    register: impl FnOnce(&mut SystemBuilder) -> T,
    mut load_worker: impl FnMut(&mut Machine, usize, &T),
) -> (Machine, T) {
    let mut b = SystemBuilder::new(cfg);
    let handles = register(&mut b);
    let mut machine = b.build();
    for w in 0..machine.num_workers() {
        load_worker(&mut machine, w, &handles);
    }
    (machine, handles)
}

// ---------------------------------------------------------------------------
// BionicDB adapters for the pre-ABI workloads
// ---------------------------------------------------------------------------
//
// Each adapter is generic over `S: BorrowMut<…>` so the same impl serves
// both the legacy entry points (borrowing a caller-owned system, e.g.
// several waves against one machine) and owned `Box<dyn Workload>` use in
// tests/harnesses.

/// YCSB point/scan transactions of one kind.
pub struct YcsbWorkload<S> {
    /// The assembled system (owned or borrowed).
    pub sys: S,
    /// Which transaction to generate.
    pub kind: YcsbKind,
}

impl<S: BorrowMut<YcsbBionic>> Workload for YcsbWorkload<S> {
    fn name(&self) -> &'static str {
        match self.kind {
            YcsbKind::ReadLocal => "ycsb_read_local",
            YcsbKind::ReadHomed => "ycsb_read_homed",
            YcsbKind::UpdateLocal => "ycsb_update_local",
            YcsbKind::Scan => "ycsb_scan",
        }
    }

    fn machine(&mut self) -> &mut Machine {
        &mut self.sys.borrow_mut().machine
    }

    fn machine_ref(&self) -> &Machine {
        &self.sys.borrow().machine
    }

    fn seed(&self) -> u64 {
        0xB105
    }

    fn block_size(&self, _worker: usize, _i: usize) -> u64 {
        self.sys.borrow().block_size(self.kind)
    }

    fn warmup(&self, txns_per_worker: usize) -> usize {
        (txns_per_worker / 4).max(8)
    }

    fn submit(&mut self, worker: usize, _i: usize, blk: TxnBlock, rng: &mut SmallRng) {
        let kind = self.kind;
        self.sys.borrow_mut().submit_txn(worker, blk, kind, rng);
    }
}

/// Which bulk KV loop to run (Figs. 10a/11a/11b + the hazard ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Sequential hash-table loading.
    HashInsert,
    /// Hash-table point queries over loaded keys.
    HashSearch,
    /// Random (bucket-colliding) hash inserts.
    HashInsertRandom,
    /// Sequential skiplist loading.
    SkipInsert,
    /// Skiplist point queries.
    SkipSearch,
}

/// Bulk KV transactions (`kv_ops` index operations each); reports
/// *operation* throughput and, as a loading wave, no aborts.
pub struct KvWorkload<S> {
    /// The assembled system (owned or borrowed).
    pub sys: S,
    /// Which bulk loop to run.
    pub op: KvOp,
}

impl<S: BorrowMut<YcsbBionic>> Workload for KvWorkload<S> {
    fn name(&self) -> &'static str {
        match self.op {
            KvOp::HashInsert => "kv_hash_insert",
            KvOp::HashSearch => "kv_hash_search",
            KvOp::HashInsertRandom => "kv_random_insert",
            KvOp::SkipInsert => "kv_skip_insert",
            KvOp::SkipSearch => "kv_skip_search",
        }
    }

    fn machine(&mut self) -> &mut Machine {
        &mut self.sys.borrow_mut().machine
    }

    fn machine_ref(&self) -> &Machine {
        &self.sys.borrow().machine
    }

    fn seed(&self) -> u64 {
        match self.op {
            KvOp::HashInsert | KvOp::HashSearch => 0x6B5D,
            KvOp::HashInsertRandom => 0xAB1A,
            KvOp::SkipInsert | KvOp::SkipSearch => 0x5C1D,
        }
    }

    fn block_size(&self, _worker: usize, _i: usize) -> u64 {
        let sys = self.sys.borrow();
        sys.kv_block_size(sys.kv_ops)
    }

    fn ops_per_txn(&self) -> u64 {
        self.sys.borrow().kv_ops as u64
    }

    fn count_aborts(&self) -> bool {
        false
    }

    fn submit(&mut self, worker: usize, _i: usize, blk: TxnBlock, rng: &mut SmallRng) {
        let sys = self.sys.borrow_mut();
        match self.op {
            KvOp::HashInsert => sys.submit_kv_txn(worker, blk, true, rng),
            KvOp::HashSearch => sys.submit_kv_txn(worker, blk, false, rng),
            KvOp::HashInsertRandom => sys.submit_kv_insert_random(worker, blk, rng),
            KvOp::SkipInsert => sys.submit_skip_txn(worker, blk, true, rng),
            KvOp::SkipSearch => sys.submit_skip_txn(worker, blk, false, rng),
        }
    }
}

/// TPC-C under a given mix; aborted transactions are retried client-side
/// and throughput counts every submitted transaction (they all commit).
pub struct TpccWorkload<S> {
    /// The assembled system (owned or borrowed).
    pub sys: S,
    /// Which transaction mix to run.
    pub mix: TpccMix,
}

impl<S: BorrowMut<TpccBionic>> Workload for TpccWorkload<S> {
    fn name(&self) -> &'static str {
        match self.mix {
            TpccMix::Mixed => "tpcc_mixed",
            TpccMix::NewOrderOnly => "tpcc_neworder",
            TpccMix::PaymentOnly => "tpcc_payment",
        }
    }

    fn machine(&mut self) -> &mut Machine {
        &mut self.sys.borrow_mut().machine
    }

    fn machine_ref(&self) -> &Machine {
        &self.sys.borrow().machine
    }

    fn seed(&self) -> u64 {
        0x79CC
    }

    fn block_size(&self, _worker: usize, i: usize) -> u64 {
        if self.mix.neworder_at(i) {
            TpccBionic::neworder_block_size()
        } else {
            TpccBionic::payment_block_size()
        }
    }

    fn retry(&self) -> Option<RetryBudget> {
        Some(RetryBudget {
            max_attempts: 1000,
            backoff_cycles: 0,
        })
    }

    fn submit(&mut self, worker: usize, i: usize, blk: TxnBlock, rng: &mut SmallRng) {
        if self.mix.neworder_at(i) {
            self.sys.borrow_mut().submit_neworder(worker, blk, rng);
        } else {
            self.sys.borrow_mut().submit_payment(worker, blk, rng);
        }
    }
}

// ---------------------------------------------------------------------------
// Silo adapters
// ---------------------------------------------------------------------------

/// YCSB-C (read-only) on the Silo baseline.
pub struct YcsbSiloRead<'a>(pub &'a YcsbSilo);

impl SiloWorkload for YcsbSiloRead<'_> {
    fn seed(&self) -> u64 {
        0x51C0
    }

    fn run(&self, model: &mut CoreModel, rng: &mut SmallRng, _i: usize) -> bool {
        self.0.run_read_txn(model, rng, None)
    }
}

/// Scan-only YCSB-E on the Silo baseline against one software index.
pub struct YcsbSiloScan<'a> {
    /// The loaded database.
    pub sys: &'a YcsbSilo,
    /// Which index to scan (`sys.masstree` or `sys.skiplist`).
    pub index: usize,
}

impl SiloWorkload for YcsbSiloScan<'_> {
    fn seed(&self) -> u64 {
        0x5CA7
    }

    fn run(&self, model: &mut CoreModel, rng: &mut SmallRng, _i: usize) -> bool {
        self.sys.run_scan_txn(model, rng, self.index, None)
    }
}

/// TPC-C on the Silo baseline; the mix ratio comes from the same
/// [`TpccMix::neworder_at`] the BionicDB generator uses.
pub struct TpccSiloMix<'a> {
    /// The loaded database.
    pub sys: &'a TpccSilo,
    /// Which transaction mix to run.
    pub mix: TpccMix,
}

impl SiloWorkload for TpccSiloMix<'_> {
    fn seed(&self) -> u64 {
        0x7199
    }

    fn run(&self, model: &mut CoreModel, rng: &mut SmallRng, i: usize) -> bool {
        if self.mix.neworder_at(i) {
            self.sys.run_neworder(model, rng, None)
        } else {
            self.sys.run_payment(model, rng, None)
        }
    }
}

// ---------------------------------------------------------------------------
// Factory: the standard workload set, for harnesses that iterate workloads
// ---------------------------------------------------------------------------

/// The standard workload set at test scale. Harnesses (equivalence tests,
/// `workloadcheck`) iterate [`StdWorkload::ALL`] instead of hand-wiring
/// each system, so a new workload joins every cross-cutting test by adding
/// one variant here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StdWorkload {
    /// YCSB with per-op homes (exercises the NoC path).
    Ycsb(YcsbKind),
    /// TPC-C under a mix (exercises retry + multi-table commits).
    Tpcc(TpccMix),
    /// SmallBank (exercises the ABI seam: added with zero engine changes).
    SmallBank,
}

impl StdWorkload {
    /// One representative of each workload family.
    pub const ALL: [StdWorkload; 3] = [
        StdWorkload::Ycsb(YcsbKind::ReadHomed),
        StdWorkload::Tpcc(TpccMix::Mixed),
        StdWorkload::SmallBank,
    ];

    /// Build the workload at unit-test scale on `cfg`.
    pub fn build(self, cfg: BionicConfig) -> Box<dyn Workload> {
        match self {
            StdWorkload::Ycsb(kind) => Box::new(YcsbWorkload {
                sys: YcsbBionic::build(cfg, YcsbSpec::tiny(), 12),
                kind,
            }),
            StdWorkload::Tpcc(mix) => Box::new(TpccWorkload {
                sys: TpccBionic::build(cfg, TpccSpec::tiny()),
                mix,
            }),
            StdWorkload::SmallBank => Box::new(SmallBankWorkload {
                sys: SmallBankBionic::build(cfg, SmallBankSpec::tiny()),
            }),
        }
    }
}
