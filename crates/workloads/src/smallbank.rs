//! SmallBank on BionicDB and Silo — the workload that proves the ABI seam.
//!
//! SmallBank (Alomari et al., "The Cost of Serializability on Platforms
//! That Use Snapshot Isolation") models a retail bank: every customer has
//! a savings and a checking account, and six short transactions move money
//! between them. It is the canonical "short transactions, hot accounts"
//! OLTP stress test, and a natural fit for BionicDB's stored-procedure
//! model: each transaction is 1–3 index operations plus a few ALU ops.
//!
//! This module was written **after** the workload ABI landed and touches
//! zero engine files: two hash tables registered through
//! [`crate::abi::assemble`], six procedures built with the shared
//! commit-discipline helpers in [`crate::abi::procs`], a seeded
//! partition-aware generator, and a Silo twin driven by the same
//! [`SbOp::at`] rotation so the mixes cannot drift between engines. It
//! runs under strict, fast-forward and epoch-parallel execution and
//! inherits chaos/crash-recovery testing through the generic harnesses.
//!
//! ## Simplification
//!
//! The canonical `WriteCheck` applies a $1 overdraft penalty when the
//! combined balance is insufficient. We make the debit unconditional so
//! every transaction's effect on total money is known at generation time —
//! the generator tracks the expected net delta and
//! [`SmallBankBionic::assert_conserved`] checks the books after every
//! driven wave (and the chaos harness checks an invariant total at any
//! committed prefix using the conserving subset of operations).
//!
//! ## Knobs
//!
//! * `hot_theta` — Zipfian account skew (hot accounts are where SmallBank
//!   hurts timestamp CC: concurrent RMWs on one balance dirty-reject);
//! * `transfer_remote_fraction` — fraction of `SendPayment` transactions
//!   crediting an account on another partition (multisite transfers over
//!   the NoC).

use std::borrow::BorrowMut;

use bionicdb::{
    BionicConfig, Machine, ProcBuilder, ProcId, RetryBudget, TableId, TableMeta, TxnBlock,
};
use bionicdb_softcore::isa::{AluOp, MemBase, Operand};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::abi::procs::{abort_clear_dirty, commit_tuple, ret_or_abort, PAYLOAD};
use crate::abi::{assemble, SiloWorkload, Workload};
use crate::zipf::Zipf;

/// SmallBank parameters.
#[derive(Debug, Clone)]
pub struct SmallBankSpec {
    /// Customer accounts per partition (each has a savings and a checking
    /// row).
    pub accounts_per_partition: u64,
    /// Payload bytes per account row (balance in the first 8 bytes).
    pub payload_len: u32,
    /// Initial balance per account row, in cents.
    pub initial_balance: u64,
    /// Zipfian skew for account selection (`None` = uniform; YCSB-style
    /// θ ∈ (0, 1), hotter as θ → 1).
    pub hot_theta: Option<f64>,
    /// Fraction of `SendPayment` transactions crediting a remote
    /// partition's account.
    pub transfer_remote_fraction: f64,
}

impl Default for SmallBankSpec {
    fn default() -> Self {
        SmallBankSpec {
            accounts_per_partition: 20_000,
            payload_len: 64,
            initial_balance: 1_000_000,
            hot_theta: None,
            transfer_remote_fraction: 0.15,
        }
    }
}

impl SmallBankSpec {
    /// A miniature spec for unit tests.
    pub fn tiny() -> Self {
        SmallBankSpec {
            accounts_per_partition: 2_000,
            ..SmallBankSpec::default()
        }
    }
}

/// The six SmallBank transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbOp {
    /// Read both balances of one account.
    Balance,
    /// checking += amount.
    DepositChecking,
    /// savings += amount.
    TransactSavings,
    /// Read savings, checking -= amount (unconditional debit; see module
    /// docs).
    WriteCheck,
    /// checking\[src\] -= amount, checking\[dst\] += amount (dst possibly
    /// remote — the multisite transfer).
    SendPayment,
    /// Move savings+checking of src into checking of dst (both local).
    Amalgamate,
}

impl SbOp {
    /// All six operations, in rotation order.
    pub const ALL: [SbOp; 6] = [
        SbOp::Balance,
        SbOp::DepositChecking,
        SbOp::TransactSavings,
        SbOp::WriteCheck,
        SbOp::SendPayment,
        SbOp::Amalgamate,
    ];

    /// The `i`-th transaction of the standard mix — the single mix source
    /// for both engines (BionicDB generator and Silo twin).
    pub fn at(i: usize) -> SbOp {
        Self::ALL[i % Self::ALL.len()]
    }

    /// The `i`-th transaction of the money-conserving mix (no deposits or
    /// debits), used by harnesses that must find the invariant total at
    /// *any* committed prefix (chaos crash recovery).
    pub fn conserving_at(i: usize) -> SbOp {
        [SbOp::SendPayment, SbOp::Amalgamate, SbOp::Balance][i % 3]
    }
}

// ---------------------------------------------------------------------------
// Transaction-block layout (uniform across all six procedures)
// ---------------------------------------------------------------------------

const SB_KEY_A: u64 = 0;
const SB_KEY_B: u64 = 8;
const SB_HOME_B: u64 = 16;
const SB_AMOUNT: u64 = 24;
/// User-area size of a SmallBank block.
pub const SB_USER_SIZE: u64 = 32;

// ---------------------------------------------------------------------------
// Stored procedures
// ---------------------------------------------------------------------------

/// Balance: search both rows, validate, commit (read-only).
fn build_balance_proc(savings: TableId, checking: TableId) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("sb_balance");
    let c_s = b.cp();
    let c_c = b.cp();
    b.search(savings, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_s);
    b.search(checking, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_c);
    b.begin_commit();
    b.ret_checked(c_s);
    b.ret_checked(c_c);
    b.commit();
    b.begin_abort();
    b.abort();
    b.build().expect("sb_balance proc")
}

/// DepositChecking / TransactSavings: one local RMW adding the block's
/// amount to the row's balance.
fn build_deposit_proc(name: &str, table: TableId) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new(name);
    let c = b.cp();
    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_amt = b.gp();
    let g_v = b.gp();
    let g_a = b.gp();

    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    b.update(table, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c);
    b.yield_();

    b.begin_commit();
    b.load(g_amt, MemBase::Block, Operand::Imm(SB_AMOUNT as i64));
    let g_a = ret_or_abort(&mut b, c, g_a);
    b.load(g_v, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    b.add(g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    commit_tuple(&mut b, g_a, g_ts, g_zero);
    b.commit();

    b.begin_abort();
    let g_x = b.gp();
    abort_clear_dirty(&mut b, g_x, g_zero, &[c]);
    b.abort();
    b.build().expect("sb deposit proc")
}

/// WriteCheck: validate the savings row exists (read), then debit checking
/// unconditionally (module docs).
fn build_write_check_proc(savings: TableId, checking: TableId) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("sb_write_check");
    let c_s = b.cp();
    let c_c = b.cp();
    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_amt = b.gp();
    let g_v = b.gp();
    let g_a = b.gp();

    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    b.search(savings, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_s);
    b.update(checking, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_c);
    b.yield_();

    b.begin_commit();
    b.load(g_amt, MemBase::Block, Operand::Imm(SB_AMOUNT as i64));
    // Validate both results before applying the debit (two-pass
    // validate-then-apply: an abort handler cannot undo a balance write).
    ret_or_abort(&mut b, c_s, g_v);
    let g_a = ret_or_abort(&mut b, c_c, g_a);
    b.load(g_v, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    b.alu(AluOp::Sub, g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    commit_tuple(&mut b, g_a, g_ts, g_zero);
    b.commit();

    b.begin_abort();
    let g_x = b.gp();
    abort_clear_dirty(&mut b, g_x, g_zero, &[c_c]);
    b.abort();
    b.build().expect("sb_write_check proc")
}

/// SendPayment: debit checking\[A\] locally, credit checking\[B\] whose
/// home partition is read from the block — the multisite transfer.
fn build_send_payment_proc(checking: TableId) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("sb_send_payment");
    let c_a = b.cp();
    let c_b = b.cp();
    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_h = b.gp();
    let g_amt = b.gp();
    let g_v = b.gp();
    let g_a = b.gp();
    let g_b = b.gp();

    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    b.update(checking, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_a);
    b.load(g_h, MemBase::Block, Operand::Imm(SB_HOME_B as i64));
    b.update(checking, Operand::Imm(SB_KEY_B as i64), Operand::Reg(g_h), c_b);
    b.yield_();

    b.begin_commit();
    b.load(g_amt, MemBase::Block, Operand::Imm(SB_AMOUNT as i64));
    // Validate both grants, then move the money.
    let g_a = ret_or_abort(&mut b, c_a, g_a);
    let g_b = ret_or_abort(&mut b, c_b, g_b);
    b.load(g_v, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    b.alu(AluOp::Sub, g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    commit_tuple(&mut b, g_a, g_ts, g_zero);
    b.load(g_v, MemBase::Reg(g_b), Operand::Imm(PAYLOAD));
    b.add(g_v, Operand::Reg(g_amt));
    b.store(g_v, MemBase::Reg(g_b), Operand::Imm(PAYLOAD));
    commit_tuple(&mut b, g_b, g_ts, g_zero);
    b.commit();

    b.begin_abort();
    let g_x = b.gp();
    abort_clear_dirty(&mut b, g_x, g_zero, &[c_a, c_b]);
    b.abort();
    b.build().expect("sb_send_payment proc")
}

/// Amalgamate: zero savings\[A\] and checking\[A\], credit their sum to
/// checking\[B\] (all rows local; A ≠ B).
fn build_amalgamate_proc(savings: TableId, checking: TableId) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("sb_amalgamate");
    let c_s = b.cp();
    let c_a = b.cp();
    let c_b = b.cp();
    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_v = b.gp();
    let g_u = b.gp();
    let g_s = b.gp();
    let g_a = b.gp();
    let g_b = b.gp();

    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    b.update(savings, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_s);
    b.update(checking, Operand::Imm(SB_KEY_A as i64), Operand::Imm(-1), c_a);
    b.update(checking, Operand::Imm(SB_KEY_B as i64), Operand::Imm(-1), c_b);
    b.yield_();

    b.begin_commit();
    let g_s = ret_or_abort(&mut b, c_s, g_s);
    let g_a = ret_or_abort(&mut b, c_a, g_a);
    let g_b = ret_or_abort(&mut b, c_b, g_b);
    // total := savings[A] + checking[A]; zero both; checking[B] += total.
    b.load(g_v, MemBase::Reg(g_s), Operand::Imm(PAYLOAD));
    b.load(g_u, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    b.add(g_v, Operand::Reg(g_u));
    b.store(g_zero, MemBase::Reg(g_s), Operand::Imm(PAYLOAD));
    b.store(g_zero, MemBase::Reg(g_a), Operand::Imm(PAYLOAD));
    b.load(g_u, MemBase::Reg(g_b), Operand::Imm(PAYLOAD));
    b.add(g_u, Operand::Reg(g_v));
    b.store(g_u, MemBase::Reg(g_b), Operand::Imm(PAYLOAD));
    commit_tuple(&mut b, g_s, g_ts, g_zero);
    commit_tuple(&mut b, g_a, g_ts, g_zero);
    commit_tuple(&mut b, g_b, g_ts, g_zero);
    b.commit();

    b.begin_abort();
    let g_x = b.gp();
    abort_clear_dirty(&mut b, g_x, g_zero, &[c_s, c_a, c_b]);
    b.abort();
    b.build().expect("sb_amalgamate proc")
}

// ---------------------------------------------------------------------------
// The assembled SmallBank system on BionicDB
// ---------------------------------------------------------------------------

/// SmallBank on BionicDB: accounts partitioned by worker, two hash tables.
pub struct SmallBankBionic {
    /// The machine.
    pub machine: Machine,
    /// Parameters.
    pub spec: SmallBankSpec,
    /// Savings rows.
    pub savings: TableId,
    /// Checking rows.
    pub checking: TableId,
    /// Balance procedure.
    pub balance: ProcId,
    /// DepositChecking procedure.
    pub deposit_checking: ProcId,
    /// TransactSavings procedure.
    pub transact_savings: ProcId,
    /// WriteCheck procedure.
    pub write_check: ProcId,
    /// SendPayment procedure.
    pub send_payment: ProcId,
    /// Amalgamate procedure.
    pub amalgamate: ProcId,
    /// Total money loaded at build time.
    initial_total: u64,
    /// Net delta of every generated transaction (wrapping, cents).
    expected_delta: u64,
    /// Hot-account sampler (`hot_theta`).
    zipf: Option<Zipf>,
}

struct SbHandles {
    savings: TableId,
    checking: TableId,
    balance: ProcId,
    deposit_checking: ProcId,
    transact_savings: ProcId,
    write_check: ProcId,
    send_payment: ProcId,
    amalgamate: ProcId,
}

impl SmallBankBionic {
    /// Build the machine, register schema + procedures, load every
    /// partition's accounts. Touches only the [`crate::abi`] surface.
    pub fn build(cfg: BionicConfig, spec: SmallBankSpec) -> Self {
        let buckets = (spec.accounts_per_partition * 2).next_power_of_two();
        let payload_len = spec.payload_len;
        let (machine, h) = assemble(
            cfg,
            |b| {
                let savings = b.table(TableMeta::hash("sb_savings", 8, payload_len, buckets));
                let checking = b.table(TableMeta::hash("sb_checking", 8, payload_len, buckets));
                SbHandles {
                    savings,
                    checking,
                    balance: b.proc(build_balance_proc(savings, checking)),
                    deposit_checking: b.proc(build_deposit_proc("sb_deposit_checking", checking)),
                    transact_savings: b.proc(build_deposit_proc("sb_transact_savings", savings)),
                    write_check: b.proc(build_write_check_proc(savings, checking)),
                    send_payment: b.proc(build_send_payment_proc(checking)),
                    amalgamate: b.proc(build_amalgamate_proc(savings, checking)),
                }
            },
            |machine, w, h| {
                let mut loader = machine.loader(w);
                let mut payload = vec![0u8; spec.payload_len as usize];
                payload[..8].copy_from_slice(&spec.initial_balance.to_le_bytes());
                for k in 0..spec.accounts_per_partition {
                    loader.insert(h.savings, &k.to_le_bytes(), &payload);
                    loader.insert(h.checking, &k.to_le_bytes(), &payload);
                }
            },
        );
        let initial_total = machine.num_workers() as u64
            * spec.accounts_per_partition
            * 2
            * spec.initial_balance;
        let zipf = spec
            .hot_theta
            .map(|theta| Zipf::new(spec.accounts_per_partition, theta));
        SmallBankBionic {
            machine,
            savings: h.savings,
            checking: h.checking,
            balance: h.balance,
            deposit_checking: h.deposit_checking,
            transact_savings: h.transact_savings,
            write_check: h.write_check,
            send_payment: h.send_payment,
            amalgamate: h.amalgamate,
            initial_total,
            expected_delta: 0,
            zipf,
            spec,
        }
    }

    /// Bytes per transaction block (uniform across operations).
    pub fn block_size() -> u64 {
        bionicdb_softcore::BLOCK_HEADER_SIZE + SB_USER_SIZE
    }

    /// Draw one account id (Zipfian when `hot_theta` is set).
    fn draw_account(&self, rng: &mut SmallRng) -> u64 {
        match &self.zipf {
            Some(z) => z.sample(rng),
            None => rng.gen_range(0..self.spec.accounts_per_partition),
        }
    }

    /// Draw an account distinct from `other`.
    fn draw_distinct(&self, rng: &mut SmallRng, other: u64) -> u64 {
        assert!(self.spec.accounts_per_partition > 1, "need two accounts");
        loop {
            let k = self.draw_account(rng);
            if k != other {
                return k;
            }
        }
    }

    /// Populate and submit one `op` transaction for `worker`, tracking the
    /// expected net effect on total money.
    pub fn submit_txn(&mut self, worker: usize, blk: TxnBlock, op: SbOp, rng: &mut SmallRng) {
        let n_workers = self.machine.num_workers();
        let src = self.draw_account(rng);
        let (proc, dst, home_b, amount) = match op {
            SbOp::Balance => (self.balance, 0, worker as u64, 0),
            SbOp::DepositChecking | SbOp::TransactSavings | SbOp::WriteCheck => {
                let amount = rng.gen_range(100..=5_000u64);
                let proc = match op {
                    SbOp::DepositChecking => {
                        self.expected_delta = self.expected_delta.wrapping_add(amount);
                        self.deposit_checking
                    }
                    SbOp::TransactSavings => {
                        self.expected_delta = self.expected_delta.wrapping_add(amount);
                        self.transact_savings
                    }
                    _ => {
                        self.expected_delta = self.expected_delta.wrapping_sub(amount);
                        self.write_check
                    }
                };
                (proc, 0, worker as u64, amount)
            }
            SbOp::SendPayment => {
                let home = if n_workers > 1
                    && rng.gen_bool(self.spec.transfer_remote_fraction)
                {
                    // Uniform over the other partitions.
                    let mut h = rng.gen_range(0..n_workers - 1);
                    if h >= worker {
                        h += 1;
                    }
                    h as u64
                } else {
                    worker as u64
                };
                // A remote credit may reuse the local key id; a local one
                // must hit a distinct row (a repeated key would
                // self-conflict on its own dirty mark).
                let dst = if home == worker as u64 {
                    self.draw_distinct(rng, src)
                } else {
                    self.draw_account(rng)
                };
                let amount = rng.gen_range(100..=5_000u64);
                (self.send_payment, dst, home, amount)
            }
            SbOp::Amalgamate => {
                let dst = self.draw_distinct(rng, src);
                (self.amalgamate, dst, worker as u64, 0)
            }
        };
        let m = &mut self.machine;
        m.init_block(blk, proc);
        m.write_block_u64(blk, SB_KEY_A, src);
        m.write_block_u64(blk, SB_KEY_B, dst);
        m.write_block_u64(blk, SB_HOME_B, home_b);
        m.write_block_u64(blk, SB_AMOUNT, amount);
        m.submit(worker, blk);
    }

    /// Sum every balance in the machine (host-side, untimed).
    pub fn total_balance(&mut self) -> u64 {
        let mut total = 0u64;
        let accounts = self.spec.accounts_per_partition;
        for w in 0..self.machine.num_workers() {
            let loader = self.machine.loader(w);
            for table in [self.savings, self.checking] {
                for k in 0..accounts {
                    let addr = loader
                        .lookup(table, &k.to_le_bytes())
                        .expect("loaded account");
                    let payload = loader.payload(table, addr);
                    total = total.wrapping_add(u64::from_le_bytes(
                        payload[..8].try_into().expect("balance word"),
                    ));
                }
            }
        }
        total
    }

    /// Money conservation: the books must balance against every generated
    /// transaction's expected effect. Call only when every submitted
    /// transaction has committed (the driver retries to completion).
    pub fn assert_conserved(&mut self) {
        let expect = self.initial_total.wrapping_add(self.expected_delta);
        let got = self.total_balance();
        assert_eq!(
            got, expect,
            "SmallBank books out of balance: total {got}, expected {expect}"
        );
    }

    /// Total money loaded at build time (the invariant total under the
    /// conserving mix).
    pub fn initial_total(&self) -> u64 {
        self.initial_total
    }
}

// ---------------------------------------------------------------------------
// Workload-ABI adapter
// ---------------------------------------------------------------------------

/// SmallBank as a [`Workload`]: the standard six-op rotation with
/// client-side retry (hot accounts dirty-reject under timestamp CC) and a
/// money-conservation validation hook.
pub struct SmallBankWorkload<S> {
    /// The assembled system (owned or borrowed).
    pub sys: S,
}

impl<S: BorrowMut<SmallBankBionic>> Workload for SmallBankWorkload<S> {
    fn name(&self) -> &'static str {
        "smallbank"
    }

    fn machine(&mut self) -> &mut Machine {
        &mut self.sys.borrow_mut().machine
    }

    fn machine_ref(&self) -> &Machine {
        &self.sys.borrow().machine
    }

    fn seed(&self) -> u64 {
        0x5BAB
    }

    fn block_size(&self, _worker: usize, _i: usize) -> u64 {
        SmallBankBionic::block_size()
    }

    fn retry(&self) -> Option<RetryBudget> {
        Some(RetryBudget {
            max_attempts: 1000,
            backoff_cycles: 0,
        })
    }

    fn submit(&mut self, worker: usize, i: usize, blk: TxnBlock, rng: &mut SmallRng) {
        let op = SbOp::at(i);
        self.sys.borrow_mut().submit_txn(worker, blk, op, rng);
    }

    fn validate(&mut self) {
        self.sys.borrow_mut().assert_conserved();
    }
}

// ---------------------------------------------------------------------------
// Silo driver
// ---------------------------------------------------------------------------

/// SmallBank on the Silo baseline (shared-everything; partitions only
/// scale the data). The mix comes from the same [`SbOp::at`] rotation as
/// the BionicDB generator.
pub struct SmallBankSilo {
    /// The database.
    pub db: bionicdb_silo::SiloDb,
    /// Parameters.
    pub spec: SmallBankSpec,
    /// Flat keyspace (`partitions × accounts_per_partition`).
    pub keyspace: u64,
    zipf: Option<Zipf>,
}

/// Silo-side table indices.
pub mod silo_tables {
    /// Savings rows.
    pub const SAVINGS: usize = 0;
    /// Checking rows.
    pub const CHECKING: usize = 1;
}

impl SmallBankSilo {
    /// Build and load.
    pub fn build(spec: SmallBankSpec, partitions: usize) -> Self {
        use bionicdb_silo::{SiloDb, SwIndexKind, TableDef};
        let keyspace = spec.accounts_per_partition * partitions as u64;
        let h = SwIndexKind::Hash {
            buckets: (keyspace * 2).next_power_of_two() as usize,
        };
        let db = SiloDb::new(vec![
            TableDef::new("sb_savings", h, spec.payload_len as usize),
            TableDef::new("sb_checking", h, spec.payload_len as usize),
        ]);
        let mut payload = vec![0u8; spec.payload_len as usize];
        payload[..8].copy_from_slice(&spec.initial_balance.to_le_bytes());
        for k in 0..keyspace {
            db.load(silo_tables::SAVINGS, k, payload.clone());
            db.load(silo_tables::CHECKING, k, payload.clone());
        }
        let zipf = spec.hot_theta.map(|theta| Zipf::new(keyspace, theta));
        SmallBankSilo {
            db,
            keyspace,
            zipf,
            spec,
        }
    }

    fn draw_account(&self, rng: &mut SmallRng) -> u64 {
        match &self.zipf {
            Some(z) => z.sample(rng),
            None => rng.gen_range(0..self.keyspace),
        }
    }

    /// Run the `i`-th transaction of the standard rotation; returns false
    /// on abort.
    pub fn run_txn<T: bionicdb_cpu_model::Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
        i: usize,
        cancel: Option<&bionicdb_silo::CancelToken>,
    ) -> bool {
        use silo_tables::{CHECKING, SAVINGS};
        let src = self.draw_account(rng);
        let mut txn = self.db.txn();
        if let Some(c) = cancel {
            txn.set_cancel(c.clone());
        }
        match SbOp::at(i) {
            SbOp::Balance => {
                let mut buf = Vec::new();
                if !txn.read(tr, SAVINGS, src, &mut buf) {
                    return false;
                }
                if !txn.read(tr, CHECKING, src, &mut buf) {
                    return false;
                }
            }
            SbOp::DepositChecking => {
                let amount = rng.gen_range(100..=5_000u64);
                if !txn.modify(tr, CHECKING, src, |p| add_u64(p, 0, amount)) {
                    return false;
                }
            }
            SbOp::TransactSavings => {
                let amount = rng.gen_range(100..=5_000u64);
                if !txn.modify(tr, SAVINGS, src, |p| add_u64(p, 0, amount)) {
                    return false;
                }
            }
            SbOp::WriteCheck => {
                let amount = rng.gen_range(100..=5_000u64);
                let mut buf = Vec::new();
                if !txn.read(tr, SAVINGS, src, &mut buf) {
                    return false;
                }
                if !txn.modify(tr, CHECKING, src, |p| sub_u64(p, 0, amount)) {
                    return false;
                }
            }
            SbOp::SendPayment => {
                let dst = self.draw_distinct(rng, src);
                let amount = rng.gen_range(100..=5_000u64);
                let ok = txn.modify(tr, CHECKING, src, |p| sub_u64(p, 0, amount))
                    && txn.modify(tr, CHECKING, dst, |p| add_u64(p, 0, amount));
                if !ok {
                    return false;
                }
            }
            SbOp::Amalgamate => {
                let dst = self.draw_distinct(rng, src);
                let mut total = 0u64;
                let ok = txn.modify(tr, SAVINGS, src, |p| {
                    total = total.wrapping_add(read_u64(p, 0));
                    p[..8].copy_from_slice(&0u64.to_le_bytes());
                }) && txn.modify(tr, CHECKING, src, |p| {
                    total = total.wrapping_add(read_u64(p, 0));
                    p[..8].copy_from_slice(&0u64.to_le_bytes());
                });
                if !ok {
                    return false;
                }
                if !txn.modify(tr, CHECKING, dst, |p| add_u64(p, 0, total)) {
                    return false;
                }
            }
        }
        txn.commit(tr).is_ok()
    }

    fn draw_distinct(&self, rng: &mut SmallRng, other: u64) -> u64 {
        assert!(self.keyspace > 1, "need two accounts");
        loop {
            let k = self.draw_account(rng);
            if k != other {
                return k;
            }
        }
    }
}

impl SiloWorkload for SmallBankSilo {
    fn seed(&self) -> u64 {
        0x5B51
    }

    fn run(&self, model: &mut bionicdb_cpu_model::CoreModel, rng: &mut SmallRng, i: usize) -> bool {
        self.run_txn(model, rng, i, None)
    }
}

fn read_u64(p: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(p[off..off + 8].try_into().expect("u64 field"))
}

fn add_u64(p: &mut [u8], off: usize, v: u64) {
    let x = read_u64(p, off);
    p[off..off + 8].copy_from_slice(&x.wrapping_add(v).to_le_bytes());
}

fn sub_u64(p: &mut [u8], off: usize, v: u64) {
    let x = read_u64(p, off);
    p[off..off + 8].copy_from_slice(&x.wrapping_sub(v).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb::ExecMode;
    use rand::SeedableRng;

    fn tiny(workers: usize) -> SmallBankBionic {
        let mut cfg = BionicConfig::small(workers);
        cfg.mode = ExecMode::Interleaved;
        SmallBankBionic::build(cfg, SmallBankSpec::tiny())
    }

    fn run_ops(sb: &mut SmallBankBionic, ops: &[SbOp], seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let workers = sb.machine.num_workers();
        let mut blocks = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            let w = i % workers;
            let blk = sb.machine.alloc_block(w, SmallBankBionic::block_size());
            sb.submit_txn(w, blk, op, &mut rng);
            blocks.push((w, blk));
        }
        sb.machine.run_to_quiescence_limit(1 << 26);
        let out = sb.machine.retry_to_completion(
            &blocks,
            RetryBudget {
                max_attempts: 128,
                backoff_cycles: 0,
            },
            1 << 26,
        );
        assert!(out.all_committed(), "SmallBank ops failed to converge");
    }

    #[test]
    fn every_op_commits_and_conserves() {
        let mut sb = tiny(2);
        let ops: Vec<SbOp> = (0..12).map(SbOp::at).collect();
        run_ops(&mut sb, &ops, 7);
        sb.assert_conserved();
    }

    #[test]
    fn deposit_moves_the_expected_amount() {
        let mut sb = tiny(1);
        let before = sb.total_balance();
        run_ops(&mut sb, &[SbOp::DepositChecking], 11);
        let after = sb.total_balance();
        assert!(after > before, "deposit increased total money");
        sb.assert_conserved();
    }

    #[test]
    fn conserving_mix_keeps_the_invariant_total() {
        let mut sb = tiny(2);
        let ops: Vec<SbOp> = (0..9).map(SbOp::conserving_at).collect();
        run_ops(&mut sb, &ops, 13);
        assert_eq!(sb.total_balance(), sb.initial_total());
        sb.assert_conserved();
    }

    #[test]
    fn remote_send_payment_crosses_the_noc() {
        let mut sb = tiny(2);
        sb.spec.transfer_remote_fraction = 1.0;
        let ops = [SbOp::SendPayment; 6];
        run_ops(&mut sb, &ops, 17);
        assert!(
            sb.machine.noc().stats().sent > 0,
            "remote transfers crossed the NoC"
        );
        assert_eq!(sb.total_balance(), sb.initial_total());
    }

    #[test]
    fn hot_theta_skews_account_selection() {
        let mut cfg = BionicConfig::small(1);
        cfg.mode = ExecMode::Interleaved;
        let sb = SmallBankBionic::build(
            cfg,
            SmallBankSpec {
                hot_theta: Some(0.99),
                ..SmallBankSpec::tiny()
            },
        );
        let mut rng = SmallRng::seed_from_u64(23);
        let hot = (0..512)
            .filter(|_| sb.draw_account(&mut rng) < 16)
            .count();
        assert!(hot > 128, "zipf concentrates on hot accounts: {hot}/512");
    }

    #[test]
    fn silo_twin_runs_the_same_rotation() {
        let silo = SmallBankSilo::build(SmallBankSpec::tiny(), 2);
        let mut model = bionicdb_cpu_model::CoreModel::new(bionicdb_cpu_model::CpuConfig::default());
        let mut rng = SmallRng::seed_from_u64(29);
        for i in 0..12 {
            assert!(silo.run_txn(&mut model, &mut rng, i, None), "txn {i} committed");
        }
        // Single-threaded: the books must balance exactly. Sum via reads.
        let mut total = 0u64;
        let mut buf = Vec::new();
        for t in [silo_tables::SAVINGS, silo_tables::CHECKING] {
            for k in 0..silo.keyspace {
                let mut txn = silo.db.txn();
                assert!(txn.read(&mut model, t, k, &mut buf));
                total = total.wrapping_add(read_u64(&buf, 0));
            }
        }
        let mut expect = silo.keyspace * 2 * silo.spec.initial_balance;
        // Replay the generator's deltas: deposits/debits from the same
        // seed/rotation.
        let mut rng = SmallRng::seed_from_u64(29);
        let mut model2 =
            bionicdb_cpu_model::CoreModel::new(bionicdb_cpu_model::CpuConfig::default());
        let probe = SmallBankSilo::build(SmallBankSpec::tiny(), 2);
        for i in 0..12 {
            // Re-run against a fresh db purely to consume the RNG the same
            // way; track deltas by op kind.
            let before = rng.clone();
            assert!(probe.run_txn(&mut model2, &mut rng, i, None));
            let mut r = before;
            let _src = probe.draw_account(&mut r);
            match SbOp::at(i) {
                SbOp::DepositChecking | SbOp::TransactSavings => {
                    expect = expect.wrapping_add(r.gen_range(100..=5_000u64));
                }
                SbOp::WriteCheck => {
                    expect = expect.wrapping_sub(r.gen_range(100..=5_000u64));
                }
                _ => {}
            }
        }
        assert_eq!(total, expect, "silo books balance");
    }
}
