//! Workloads for the BionicDB evaluation: YCSB, TPC-C and the raw
//! key-value microbenchmark (paper §5.3), with drivers for both engines.
//!
//! * [`spec`] — workload parameters and key-encoding conventions;
//! * [`ycsb`] — YCSB-C (read-only, 16 independent accesses per
//!   transaction), the modified scan-only YCSB-E (range 50), and the
//!   non-transactional KV insert/search microbenchmark of Fig. 10a;
//! * [`tpcc`] — TPC-C NewOrder + Payment (50:50 mix; paper §5.3: database
//!   partitioned by warehouse, Item replicated, Payment modified to select
//!   customers by id; 1% of NewOrder and 15% of Payment cross-partition);
//! * [`smallbank`] — SmallBank (six short banking procedures, hash-index
//!   only, hot-account skew and multisite transfer knobs), added through
//!   the workload ABI with zero engine changes;
//! * [`abi`] — the workload ABI: the [`Workload`] trait every benchmark
//!   implements, its Silo twin [`SiloWorkload`], shared procedure-builder
//!   commit-discipline helpers, and adapters for the workloads above.
//!
//! Each workload module contains a `bionic` driver (stored-procedure
//! builders and transaction-block populators for BionicDB) and a `silo`
//! driver (the equivalent transaction bodies for the Silo baseline); both
//! plug into the generic driver/model runner in `bionicdb_bench` through
//! the [`abi`] traits.
//!
//! ## Key encoding conventions
//!
//! Hash-table keys need only equality: they are stored little-endian.
//! Skiplist keys are range-scanned: they are stored **big-endian** so that
//! byte order equals numeric order. Composite TPC-C keys pack their fields
//! into 64 bits (see [`spec`]).
//!
//! ## Scale
//!
//! Defaults are scaled down from the paper (100 K × 100 B records per
//! partition instead of 300 K × 1 KB) so the full figure suite simulates in
//! CI-class time; every structure stays far larger than any modelled cache,
//! which is what the shapes depend on. `EXPERIMENTS.md` records the scaling
//! per experiment.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod abi;
pub mod serve;
pub mod smallbank;
pub mod spec;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use abi::{SiloWorkload, StdWorkload, Workload};
pub use serve::{ServeKind, ServeMix};
pub use smallbank::{SmallBankSpec, SbOp};
pub use spec::{KvSpec, TpccSpec, YcsbSpec};
pub use tpcc::TpccMix;
pub use zipf::Zipf;
