//! YCSB and the KV microbenchmark: drivers for both engines.
//!
//! Paper §5.3: the YCSB transaction issues 16 independent DB accesses with
//! no data dependencies; the table has 8-byte integer keys; 300 K records
//! per partition (scaled here, see crate docs). YCSB-C is read-only;
//! YCSB-E is modified to be scan-only with a fixed range of 50. The KV
//! microbenchmark (Fig. 10a) issues 60 inserts or searches in bulk per
//! transaction.

use bionicdb::{BionicConfig, Machine, ProcBuilder, ProcId, TableId, TableMeta, TxnBlock};
use bionicdb_softcore::isa::{MemBase, Operand};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::YcsbSpec;

/// Which YCSB transaction to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbKind {
    /// Read-only point accesses, all local (YCSB-C as run in Figs. 9a/10b).
    ReadLocal,
    /// Read-only point accesses with a per-access home partition read from
    /// the transaction block (the Fig. 13 multisite form; "single-site"
    /// blocks simply carry the local worker id).
    ReadHomed,
    /// Update-only point accesses (each op RMWs the first payload word);
    /// alternated with `ReadLocal` this forms the YCSB-A/B mixes the paper
    /// omits ("similar results to YCSB-C").
    UpdateLocal,
    /// Scan-only (modified YCSB-E, range = `scan_len`).
    Scan,
}

/// A reusable pool of transaction blocks for one worker.
#[derive(Debug)]
pub struct BlockPool {
    blocks: Vec<TxnBlock>,
    used: usize,
}

impl BlockPool {
    /// Allocate `count` blocks of `size` bytes in `worker`'s arena.
    pub fn new(m: &mut Machine, worker: usize, count: usize, size: u64) -> Self {
        BlockPool {
            blocks: (0..count).map(|_| m.alloc_block(worker, size)).collect(),
            used: 0,
        }
    }

    /// Take the next free block; panics when the pool is exhausted
    /// (call [`BlockPool::reset`] between waves).
    pub fn take(&mut self) -> TxnBlock {
        let b = self.blocks[self.used];
        self.used += 1;
        b
    }

    /// Blocks handed out since the last reset.
    pub fn in_use(&self) -> &[TxnBlock] {
        &self.blocks[..self.used]
    }

    /// Make every block available again (only when the machine is
    /// quiescent).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Remaining capacity.
    pub fn available(&self) -> usize {
        self.blocks.len() - self.used
    }
}

// ---------------------------------------------------------------------------
// BionicDB driver
// ---------------------------------------------------------------------------

/// Byte offset of op `i`'s key in a `ReadLocal` block.
fn local_key_off(i: usize) -> u64 {
    8 * i as u64
}

/// Byte offsets of op `i`'s key / home in a `ReadHomed` block.
fn homed_offs(i: usize) -> (u64, u64) {
    (16 * i as u64, 16 * i as u64 + 8)
}

/// Offset of the shared insert payload in a KV-insert block.
fn kv_payload_off(ops: usize) -> u64 {
    8 * ops as u64
}

/// Offset of the scan output buffer in a scan block.
const SCAN_OUT_OFF: u64 = 64;

/// The YCSB system on BionicDB: machine, tables, registered procedures.
pub struct YcsbBionic {
    /// The assembled machine (owned; benches drive it directly).
    pub machine: Machine,
    /// The workload parameters.
    pub spec: YcsbSpec,
    /// Hash table for point accesses.
    pub table: TableId,
    /// Skiplist table for scans.
    pub scan_table: TableId,
    /// N local searches.
    pub read_local: ProcId,
    /// N searches with per-op homes.
    pub read_homed: ProcId,
    /// N local updates (YCSB-A/B mixes).
    pub update_local: ProcId,
    /// One scan of `scan_len` records.
    pub scan: ProcId,
    /// Bulk KV insert (`kv_ops` inserts per transaction, Fig. 10a).
    pub kv_insert: ProcId,
    /// Bulk KV search (`kv_ops` searches per transaction, Fig. 10a).
    pub kv_search: ProcId,
    /// Bulk skiplist insert (sequential loading, Fig. 11a).
    pub skip_insert: ProcId,
    /// Bulk skiplist point query (Fig. 11b).
    pub skip_search: ProcId,
    /// Operations per KV bulk transaction.
    pub kv_ops: usize,
    /// Per-worker counter for fresh KV-insert keys.
    insert_seq: Vec<u64>,
}

/// Build the N-search stored procedure (optionally with per-op homes).
pub fn build_read_proc(table: TableId, ops: usize, homed: bool) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new(if homed {
        "ycsb_read_homed"
    } else {
        "ycsb_read_local"
    });
    let cps: Vec<_> = (0..ops).map(|_| b.cp()).collect();
    if homed {
        let gh = b.gp();
        for (i, &cp) in cps.iter().enumerate() {
            let (key_off, home_off) = homed_offs(i);
            b.load(gh, MemBase::Block, Operand::Imm(home_off as i64));
            b.search(table, Operand::Imm(key_off as i64), Operand::Reg(gh), cp);
        }
    } else {
        for (i, &cp) in cps.iter().enumerate() {
            b.search(
                table,
                Operand::Imm(local_key_off(i) as i64),
                Operand::Imm(-1),
                cp,
            );
        }
    }
    b.begin_commit();
    for &cp in &cps {
        b.ret_checked(cp);
    }
    b.commit();
    b.begin_abort();
    b.abort();
    b.build().expect("ycsb read proc")
}

/// Build the N-update stored procedure: each op locates its tuple via
/// UPDATE (write visibility check + dirty mark in the pipeline), and the
/// commit handler performs the in-place writes (value from the block into
/// the first payload word), stamps write timestamps and clears dirty bits
/// per paper section 4.7's commit protocol.
pub fn build_update_proc(table: TableId, ops: usize) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("ycsb_update_local");
    let cps: Vec<_> = (0..ops).map(|_| b.cp()).collect();
    for (i, &cp) in cps.iter().enumerate() {
        let (key_off, _) = homed_offs(i);
        b.update(table, Operand::Imm(key_off as i64), Operand::Imm(-1), cp);
    }
    b.begin_commit();
    let g_ts = b.gp();
    let g_zero = b.gp();
    let g_val = b.gp();
    let g_addr = b.gp();
    b.getts(g_ts);
    b.mov(g_zero, Operand::Imm(0));
    let payload0 = bionicdb_coproc::layout::TUPLE_PAYLOAD as i64;
    let write_ts = bionicdb_coproc::layout::TUPLE_HEADER as i64;
    let flags = (bionicdb_coproc::layout::TUPLE_HEADER + 16) as i64;
    for (i, &cp) in cps.iter().enumerate() {
        let (_, val_off) = homed_offs(i);
        let abort = b.abort_label();
        b.ret(g_addr, cp);
        b.cmp(g_addr, Operand::Imm(0));
        b.br(bionicdb_softcore::isa::Cond::Lt, abort);
        b.load(g_val, MemBase::Block, Operand::Imm(val_off as i64));
        b.store(g_val, MemBase::Reg(g_addr), Operand::Imm(payload0));
        b.store(g_ts, MemBase::Reg(g_addr), Operand::Imm(write_ts));
        b.store(g_zero, MemBase::Reg(g_addr), Operand::Imm(flags));
    }
    b.commit();
    b.begin_abort();
    // Clear dirty marks on whichever updates were granted.
    let g_x = b.gp();
    for &cp in &cps {
        let skip = b.label();
        b.ret(g_x, cp);
        b.cmp(g_x, Operand::Imm(0));
        b.br(bionicdb_softcore::isa::Cond::Lt, skip);
        b.store(g_zero, MemBase::Reg(g_x), Operand::Imm(flags));
        b.bind(skip);
    }
    b.abort();
    b.build().expect("ycsb update proc")
}

/// Build the bulk KV insert procedure (`ops` inserts of distinct keys
/// sharing one payload image). `flags_off` is the record-relative offset
/// of the flags word the commit handler must clear — hash tuples carry
/// their header behind the chain pointer, skiplist towers lead with it.
pub fn build_kv_insert_proc(
    table: TableId,
    ops: usize,
    flags_off: i64,
) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("kv_insert");
    let payload_off = kv_payload_off(ops) as i64;
    let cps: Vec<_> = (0..ops).map(|_| b.cp()).collect();
    for (i, &cp) in cps.iter().enumerate() {
        b.insert(
            table,
            Operand::Imm(local_key_off(i) as i64),
            Operand::Imm(payload_off),
            Operand::Imm(-1),
            cp,
        );
    }
    b.begin_commit();
    // Clear the dirty bit of every inserted tuple: the write-set walk the
    // commit handler performs (paper §4.7).
    let zero = b.gp();
    b.mov(zero, Operand::Imm(0));
    for &cp in &cps {
        let addr = b.ret_checked(cp);
        b.store(zero, MemBase::Reg(addr), Operand::Imm(flags_off));
    }
    b.commit();
    b.begin_abort();
    b.abort();
    b.build().expect("kv insert proc")
}

/// Build the scan procedure.
pub fn build_scan_proc(table: TableId, scan_len: u32) -> bionicdb_softcore::Procedure {
    let mut b = ProcBuilder::new("ycsb_scan");
    let cp = b.cp();
    b.scan(
        table,
        Operand::Imm(0),
        Operand::Imm(scan_len as i64),
        Operand::Imm(SCAN_OUT_OFF as i64),
        Operand::Imm(-1),
        cp,
    );
    b.begin_commit();
    b.ret_checked(cp);
    b.commit();
    b.begin_abort();
    b.abort();
    b.build().expect("scan proc")
}

impl YcsbBionic {
    /// Build the machine, load both tables on every partition, register the
    /// procedures. `kv_ops` sizes the bulk KV transactions (paper: 60).
    pub fn build(cfg: BionicConfig, spec: YcsbSpec, kv_ops: usize) -> Self {
        let buckets = spec
            .hash_buckets
            .unwrap_or(spec.records_per_partition * 2)
            .next_power_of_two();
        let (machine, h) = crate::abi::assemble(
            cfg,
            |b| {
                let table = b.table(TableMeta::hash("ycsb", 8, spec.payload_len, buckets));
                let scan_table = b.table(TableMeta::skiplist("ycsb_e", 8, spec.payload_len));
                let hash_flags = (bionicdb_coproc::layout::TUPLE_HEADER + 16) as i64;
                let tower_flags = 16i64;
                (
                    table,
                    scan_table,
                    b.proc(build_read_proc(table, spec.ops_per_txn, false)),
                    b.proc(build_read_proc(table, spec.ops_per_txn, true)),
                    b.proc(build_update_proc(table, spec.ops_per_txn)),
                    b.proc(build_scan_proc(scan_table, spec.scan_len)),
                    b.proc(build_kv_insert_proc(table, kv_ops, hash_flags)),
                    b.proc(build_read_proc(table, kv_ops, false)),
                    b.proc(build_kv_insert_proc(scan_table, kv_ops, tower_flags)),
                    b.proc(build_read_proc(scan_table, kv_ops, false)),
                )
            },
            |machine, w, h| {
                let (table, scan_table) = (h.0, h.1);
                let mut loader = machine.loader(w);
                let mut payload = vec![0u8; spec.payload_len as usize];
                for k in 0..spec.records_per_partition {
                    payload[..8].copy_from_slice(&k.to_le_bytes());
                    loader.insert(table, &k.to_le_bytes(), &payload);
                    loader.insert(scan_table, &k.to_be_bytes(), &payload);
                }
            },
        );
        let workers = machine.num_workers();
        YcsbBionic {
            machine,
            spec,
            table: h.0,
            scan_table: h.1,
            read_local: h.2,
            read_homed: h.3,
            update_local: h.4,
            scan: h.5,
            kv_insert: h.6,
            kv_search: h.7,
            skip_insert: h.8,
            skip_search: h.9,
            kv_ops,
            insert_seq: vec![0; workers],
        }
    }

    /// Bytes needed per block for `kind`.
    pub fn block_size(&self, kind: YcsbKind) -> u64 {
        let ops = self.spec.ops_per_txn as u64;
        bionicdb_softcore::BLOCK_HEADER_SIZE
            + match kind {
                YcsbKind::ReadLocal => 8 * ops,
                YcsbKind::ReadHomed | YcsbKind::UpdateLocal => 16 * ops,
                YcsbKind::Scan => {
                    SCAN_OUT_OFF + self.spec.scan_len as u64 * self.spec.payload_len as u64
                }
            }
    }

    /// Bytes per KV block (`ops` keys + one payload image).
    pub fn kv_block_size(&self, ops: usize) -> u64 {
        bionicdb_softcore::BLOCK_HEADER_SIZE + kv_payload_off(ops) + self.spec.payload_len as u64
    }

    /// Populate `blk` as a `kind` transaction for `worker` and submit it.
    pub fn submit_txn(&mut self, worker: usize, blk: TxnBlock, kind: YcsbKind, rng: &mut SmallRng) {
        let n_workers = self.machine.num_workers();
        match kind {
            YcsbKind::ReadLocal => {
                self.machine.init_block(blk, self.read_local);
                for i in 0..self.spec.ops_per_txn {
                    let k = rng.gen_range(0..self.spec.records_per_partition);
                    self.machine
                        .write_block(blk, local_key_off(i), &k.to_le_bytes());
                }
            }
            YcsbKind::ReadHomed => {
                self.machine.init_block(blk, self.read_homed);
                for i in 0..self.spec.ops_per_txn {
                    let (key_off, home_off) = homed_offs(i);
                    let k = rng.gen_range(0..self.spec.records_per_partition);
                    let home = if n_workers > 1 && rng.gen_bool(self.spec.remote_fraction) {
                        // Uniform over the other partitions.
                        let mut h = rng.gen_range(0..n_workers - 1);
                        if h >= worker {
                            h += 1;
                        }
                        h as u64
                    } else {
                        worker as u64
                    };
                    self.machine.write_block(blk, key_off, &k.to_le_bytes());
                    self.machine.write_block_u64(blk, home_off, home);
                }
            }
            YcsbKind::UpdateLocal => {
                self.machine.init_block(blk, self.update_local);
                // Distinct keys per transaction: a repeated key would
                // self-conflict on its own dirty mark under timestamp CC.
                let mut keys: Vec<u64> = Vec::with_capacity(self.spec.ops_per_txn);
                while keys.len() < self.spec.ops_per_txn {
                    let k = rng.gen_range(0..self.spec.records_per_partition);
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                for (i, &k) in keys.iter().enumerate() {
                    let (key_off, val_off) = homed_offs(i);
                    self.machine.write_block(blk, key_off, &k.to_le_bytes());
                    self.machine.write_block_u64(blk, val_off, rng.gen());
                }
            }
            YcsbKind::Scan => {
                self.machine.init_block(blk, self.scan);
                let max_start = self
                    .spec
                    .records_per_partition
                    .saturating_sub(self.spec.scan_len as u64);
                let k = rng.gen_range(0..max_start.max(1));
                self.machine.write_block(blk, 0, &k.to_be_bytes());
            }
        }
        self.machine.submit(worker, blk);
    }

    /// Populate and submit a bulk KV transaction (`insert=true` for fresh
    /// keys through `kv_insert`, else `kv_search` over loaded keys).
    pub fn submit_kv_txn(
        &mut self,
        worker: usize,
        blk: TxnBlock,
        insert: bool,
        rng: &mut SmallRng,
    ) {
        self.submit_bulk(worker, blk, insert, false, rng);
    }

    /// Populate and submit an update transaction whose keys are drawn from
    /// a Zipfian distribution (distinct within the transaction) — the
    /// contention-skew ablation.
    pub fn submit_update_skewed(
        &mut self,
        worker: usize,
        blk: TxnBlock,
        zipf: &crate::zipf::Zipf,
        rng: &mut SmallRng,
    ) {
        self.machine.init_block(blk, self.update_local);
        let mut keys: Vec<u64> = Vec::with_capacity(self.spec.ops_per_txn);
        while keys.len() < self.spec.ops_per_txn {
            let k = zipf.sample(rng);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            let (key_off, val_off) = homed_offs(i);
            self.machine.write_block(blk, key_off, &k.to_le_bytes());
            self.machine.write_block_u64(blk, val_off, rng.gen());
        }
        self.machine.submit(worker, blk);
    }

    /// Populate and submit a bulk hash-insert transaction with *random*
    /// fresh keys (instead of the sequential Fig. 10a loading pattern).
    /// Random keys collide in buckets, exercising the insert lock table —
    /// the hazard-prevention ablation uses this.
    pub fn submit_kv_insert_random(&mut self, worker: usize, blk: TxnBlock, rng: &mut SmallRng) {
        let ops = self.kv_ops;
        self.machine.init_block(blk, self.kv_insert);
        let base = self.spec.records_per_partition;
        for i in 0..ops {
            // Fresh (unloaded) key space, scrambled.
            let k = base + (rng.gen::<u64>() % (base * 64));
            self.machine
                .write_block(blk, local_key_off(i), &k.to_le_bytes());
        }
        let payload = vec![0xAB; self.spec.payload_len as usize];
        self.machine.write_block(blk, kv_payload_off(ops), &payload);
        self.machine.submit(worker, blk);
    }

    /// Populate and submit a bulk *skiplist* transaction (Fig. 11a/11b:
    /// sequential loading / point query). Skiplist keys are big-endian.
    pub fn submit_skip_txn(
        &mut self,
        worker: usize,
        blk: TxnBlock,
        insert: bool,
        rng: &mut SmallRng,
    ) {
        self.submit_bulk(worker, blk, insert, true, rng);
    }

    fn submit_bulk(
        &mut self,
        worker: usize,
        blk: TxnBlock,
        insert: bool,
        skiplist: bool,
        rng: &mut SmallRng,
    ) {
        let ops = self.kv_ops;
        let proc = match (skiplist, insert) {
            (false, true) => self.kv_insert,
            (false, false) => self.kv_search,
            (true, true) => self.skip_insert,
            (true, false) => self.skip_search,
        };
        self.machine.init_block(blk, proc);
        for i in 0..ops {
            let k = if insert {
                // Sequential loading (paper Fig. 11a): fresh ascending keys.
                let k = self.spec.records_per_partition + self.insert_seq[worker];
                self.insert_seq[worker] += 1;
                k
            } else {
                rng.gen_range(0..self.spec.records_per_partition)
            };
            let bytes = if skiplist {
                k.to_be_bytes()
            } else {
                k.to_le_bytes()
            };
            self.machine.write_block(blk, local_key_off(i), &bytes);
        }
        if insert {
            let payload = vec![0xAB; self.spec.payload_len as usize];
            self.machine.write_block(blk, kv_payload_off(ops), &payload);
        }
        self.machine.submit(worker, blk);
    }

    /// Deterministic RNG for a worker.
    pub fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }
}

// ---------------------------------------------------------------------------
// Silo driver
// ---------------------------------------------------------------------------

/// The YCSB database on the Silo baseline.
pub struct YcsbSilo {
    /// The database.
    pub db: bionicdb_silo::SiloDb,
    /// Workload parameters.
    pub spec: YcsbSpec,
    /// Flat keyspace size (`partitions × records_per_partition`; Silo is
    /// shared-everything, so "partitions" only scales the data).
    pub keyspace: u64,
    /// Hash table index.
    pub table: usize,
    /// Masstree index (scan comparisons).
    pub masstree: usize,
    /// Software skiplist index (scan comparisons).
    pub skiplist: usize,
}

impl YcsbSilo {
    /// Build and load the Silo-side YCSB database.
    pub fn build(spec: YcsbSpec, partitions: usize) -> Self {
        use bionicdb_silo::{SiloDb, SwIndexKind, TableDef};
        let keyspace = spec.records_per_partition * partitions as u64;
        let db = SiloDb::new(vec![
            TableDef::new(
                "ycsb",
                SwIndexKind::Hash {
                    buckets: (keyspace * 2) as usize,
                },
                spec.payload_len as usize,
            ),
            TableDef::new("ycsb_mt", SwIndexKind::Masstree, spec.payload_len as usize),
            TableDef::new("ycsb_sl", SwIndexKind::Skiplist, spec.payload_len as usize),
        ]);
        let mut payload = vec![0u8; spec.payload_len as usize];
        for k in 0..keyspace {
            payload[..8].copy_from_slice(&k.to_le_bytes());
            db.load(0, k, payload.clone());
            db.load(1, k, payload.clone());
            db.load(2, k, payload.clone());
        }
        YcsbSilo {
            db,
            spec,
            keyspace,
            table: 0,
            masstree: 1,
            skiplist: 2,
        }
    }

    /// Run one YCSB-C transaction (16 independent reads); returns false on
    /// abort (cannot happen read-only, but kept uniform). `cancel` attaches
    /// a serving-layer deadline token: the commit aborts when it has fired.
    pub fn run_read_txn<T: bionicdb_cpu_model::Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
        cancel: Option<&bionicdb_silo::CancelToken>,
    ) -> bool {
        let mut txn = self.db.txn();
        if let Some(c) = cancel {
            txn.set_cancel(c.clone());
        }
        let mut buf = Vec::with_capacity(self.spec.payload_len as usize);
        tr.begin_group(self.spec.ops_per_txn);
        for _ in 0..self.spec.ops_per_txn {
            let k = rng.gen_range(0..self.keyspace);
            let found = txn.read(tr, self.table, k, &mut buf);
            debug_assert!(found, "loaded key {k}");
        }
        tr.end_group();
        txn.commit(tr).is_ok()
    }

    /// Run one scan-only YCSB-E transaction against the given index
    /// (`masstree` or `skiplist`).
    pub fn run_scan_txn<T: bionicdb_cpu_model::Tracer>(
        &self,
        tr: &mut T,
        rng: &mut SmallRng,
        index: usize,
        cancel: Option<&bionicdb_silo::CancelToken>,
    ) -> bool {
        let mut txn = self.db.txn();
        if let Some(c) = cancel {
            txn.set_cancel(c.clone());
        }
        let start = rng.gen_range(
            0..self
                .keyspace
                .saturating_sub(self.spec.scan_len as u64)
                .max(1),
        );
        let mut out = Vec::with_capacity(self.spec.scan_len as usize);
        txn.scan(tr, index, start, self.spec.scan_len as usize, &mut out);
        txn.commit(tr).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb::{BlockStatus, ExecMode};

    fn tiny_machine(kind_workers: usize) -> YcsbBionic {
        let mut cfg = BionicConfig::small(kind_workers);
        cfg.mode = ExecMode::Interleaved;
        YcsbBionic::build(cfg, YcsbSpec::tiny(), 12)
    }

    #[test]
    fn read_local_txns_commit_on_bionicdb() {
        let mut y = tiny_machine(2);
        let mut rng = YcsbBionic::rng(1);
        let size = y.block_size(YcsbKind::ReadLocal);
        let mut pools: Vec<BlockPool> = (0..2)
            .map(|w| BlockPool::new(&mut y.machine, w, 8, size))
            .collect();
        for (w, pool) in pools.iter_mut().enumerate() {
            for _ in 0..8 {
                let blk = pool.take();
                y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut rng);
            }
        }
        y.machine.run_to_quiescence_limit(1 << 26);
        for pool in &pools {
            for &blk in pool.in_use() {
                assert!(y.machine.block_status(blk).is_committed());
            }
        }
        assert_eq!(y.machine.stats().committed, 16);
    }

    #[test]
    fn homed_txns_cross_partitions_and_commit() {
        let mut y = tiny_machine(2);
        let mut rng = YcsbBionic::rng(2);
        let size = y.block_size(YcsbKind::ReadHomed);
        let blk = y.machine.alloc_block(0, size);
        y.submit_txn(0, blk, YcsbKind::ReadHomed, &mut rng);
        y.machine.run_to_quiescence_limit(1 << 26);
        assert!(y.machine.block_status(blk).is_committed());
        assert!(
            y.machine.noc().stats().sent > 0,
            "some accesses were remote"
        );
    }

    #[test]
    fn scan_txn_fills_result_buffer() {
        let mut y = tiny_machine(1);
        let mut rng = YcsbBionic::rng(3);
        let blk = y.machine.alloc_block(0, y.block_size(YcsbKind::Scan));
        y.submit_txn(0, blk, YcsbKind::Scan, &mut rng);
        y.machine.run_to_quiescence_limit(1 << 26);
        assert!(y.machine.block_status(blk).is_committed());
        // First scanned payload embeds its key (loader wrote it there).
        let first = y.machine.read_block(blk, SCAN_OUT_OFF, 8);
        let k = u64::from_le_bytes(first.try_into().unwrap());
        assert!(k < y.spec.records_per_partition);
    }

    #[test]
    fn update_txns_modify_payloads_and_commit() {
        let mut y = tiny_machine(1);
        let mut rng = YcsbBionic::rng(5);
        let blk = y
            .machine
            .alloc_block(0, y.block_size(YcsbKind::UpdateLocal));
        y.submit_txn(0, blk, YcsbKind::UpdateLocal, &mut rng);
        y.machine.run_to_quiescence_limit(1 << 26);
        assert!(y.machine.block_status(blk).is_committed());
        // Every updated key's payload now starts with the written value.
        let table = y.table;
        for i in 0..y.spec.ops_per_txn {
            let (key_off, val_off) = homed_offs(i);
            let key = y.machine.read_block(blk, key_off, 8);
            let val = y.machine.read_block_u64(blk, val_off);
            let loader = y.machine.loader(0);
            let addr = loader.lookup(table, &key).expect("key present");
            let payload = loader.payload(table, addr);
            assert_eq!(
                u64::from_le_bytes(payload[..8].try_into().unwrap()),
                val,
                "op {i}"
            );
        }
        // Tuples are committed (visible to later readers).
        let blk2 = y.machine.alloc_block(0, y.block_size(YcsbKind::ReadLocal));
        y.submit_txn(0, blk2, YcsbKind::ReadLocal, &mut rng);
        y.machine.run_to_quiescence_limit(1 << 26);
        assert!(y.machine.block_status(blk2).is_committed());
    }

    #[test]
    fn kv_insert_then_search_roundtrip() {
        let mut y = tiny_machine(1);
        let mut rng = YcsbBionic::rng(4);
        let size = y.kv_block_size(y.kv_ops);
        let ins = y.machine.alloc_block(0, size);
        y.submit_kv_txn(0, ins, true, &mut rng);
        y.machine.run_to_quiescence_limit(1 << 26);
        assert!(y.machine.block_status(ins).is_committed());

        // The freshly inserted keys are committed and findable: search the
        // first 12 fresh keys via a dedicated read wave against user keys.
        let base = y.spec.records_per_partition;
        let table = y.table;
        let found = {
            let loader = y.machine.loader(0);
            (0..y.kv_ops as u64).all(|i| loader.lookup(table, &(base + i).to_le_bytes()).is_some())
        };
        assert!(found, "all inserted keys present and committed");
    }
}
