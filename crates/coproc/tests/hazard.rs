//! Skiplist insert–insert hazard behaviour (paper §4.4.2, Fig. 7):
//! with the entry-point lock table on, concurrent inserts never record a
//! stale path; with it off, stale paths appear and only the bottom stage's
//! link-time re-validation keeps the structure consistent.

use bionicdb_coproc::layout::{read_header, TableState, TOWER_NEXTS};
use bionicdb_coproc::skiplist::tower_height;
use bionicdb_coproc::{CoprocConfig, IndexCoproc};
use bionicdb_fpga::{Dram, FpgaConfig, Region};
use bionicdb_softcore::catalogue::{TableId, TableMeta};
use bionicdb_softcore::request::{CpSlot, DbOp, DbRequest, PartitionId};
use bionicdb_softcore::{DbResult, IndexKey};

const PAYLOAD: u32 = 16;

struct Rig {
    dram: Dram,
    coproc: IndexCoproc,
    tables: Vec<TableState>,
    now: u64,
    next_block: u64,
}

impl Rig {
    fn new(hazard_prevention: bool) -> Rig {
        let fcfg = FpgaConfig::default();
        let mut dram = Dram::new(&fcfg, 32 << 20);
        let mut cfg = CoprocConfig::from_fpga(&fcfg);
        cfg.hazard_prevention = hazard_prevention;
        let coproc = IndexCoproc::new(&cfg, &mut dram);
        let mut region = Region::new(8 << 20, 20 << 20);
        let skip_dir = region.alloc(8 * 20, 64);
        let tables = vec![TableState {
            meta: TableMeta::skiplist("s", 8, PAYLOAD),
            dir_addr: skip_dir,
            heap: region.carve(16 << 20, 64),
            max_level: 20,
        }];
        Rig {
            dram,
            coproc,
            tables,
            now: 0,
            next_block: 4096,
        }
    }

    /// Submit a storm of concurrent inserts (pipelined, not serialized) and
    /// run to completion. Returns the successful insert count.
    fn insert_storm(&mut self, keys: &[u64]) -> usize {
        let mut submitted = 0usize;
        let mut completed = 0usize;
        let mut next = 0usize;
        let mut budget: u64 = 80_000_000;
        while completed < keys.len() {
            self.now += 1;
            budget -= 1;
            assert!(budget > 0, "storm did not complete");
            // Feed the admission queue as fast as it accepts.
            while next < keys.len() && self.coproc.input.has_space() {
                let k = keys[next];
                let key_addr = self.next_block;
                let payload_addr = key_addr + 64;
                self.next_block += 256;
                assert!(self.next_block < (8 << 20));
                self.dram
                    .host_write(key_addr, IndexKey::from_u64(k).as_bytes());
                self.dram
                    .host_write(payload_addr, &vec![k as u8; PAYLOAD as usize]);
                let req = DbRequest {
                    op: DbOp::Insert,
                    table: TableId(0),
                    key_addr,
                    payload_addr,
                    scan_count: 0,
                    out_addr: 0,
                    ts: 100 + next as u64,
                    cp: CpSlot {
                        worker: PartitionId(0),
                        index: (submitted % 256) as u16,
                    },
                    home: PartitionId(0),
                    batch_group: 0,
                };
                self.coproc.input.push(req).expect("space checked");
                submitted += 1;
                next += 1;
            }
            self.dram.tick(self.now);
            self.coproc.tick(self.now, &mut self.dram, &mut self.tables);
            while let Some(r) = self.coproc.out.pop() {
                assert!(DbResult::decode(r.value).is_ok(), "insert failed");
                completed += 1;
            }
        }
        completed
    }

    /// Audit every level: towers present exactly per their deterministic
    /// heights, keys sorted, nothing lost (the paper's Fig. 7a anomaly
    /// would lose towers from upper levels).
    fn audit(&self, keys: &[u64]) {
        let state = &self.tables[0];
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for level in 0..10usize {
            let expected: Vec<u64> = sorted
                .iter()
                .copied()
                .filter(|&k| tower_height(&IndexKey::from_u64(k), 20) > level)
                .collect();
            let mut got = Vec::new();
            let mut cur = self.dram.host_read_u64(state.head_next_addr(level));
            while cur != 0 {
                got.push(read_header(&self.dram, cur).key.to_u64());
                cur = self
                    .dram
                    .host_read_u64(cur + TOWER_NEXTS + 8 * level as u64);
            }
            assert_eq!(got, expected, "level {level} chain");
        }
    }
}

fn storm_keys() -> Vec<u64> {
    // Adjacent keys maximize shared insert paths (the Fig. 7 hazard needs
    // overlapping predecessor cones).
    (0..400u64)
        .map(|i| (i * 97) % 1000)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .rev() // descending order stresses front-of-list path sharing
        .collect()
}

#[test]
fn with_locks_no_stale_paths_and_structure_intact() {
    let keys = storm_keys();
    let mut rig = Rig::new(true);
    assert_eq!(rig.insert_storm(&keys), keys.len());
    rig.audit(&keys);
    let stats = rig.coproc.skip_stats();
    assert_eq!(
        stats.stale_path_fixups, 0,
        "entry-point locks must prevent stale insert paths"
    );
}

#[test]
fn without_locks_stale_paths_occur_but_revalidation_saves_the_structure() {
    let keys = storm_keys();
    let mut rig = Rig::new(false);
    assert_eq!(rig.insert_storm(&keys), keys.len());
    // The Fig. 7a hazard fired (stale recorded paths) ...
    let stats = rig.coproc.skip_stats();
    assert!(
        stats.stale_path_fixups > 0,
        "expected stale insert paths with hazard prevention disabled"
    );
    // ... but the bottom stage's link-time re-walk kept every level
    // consistent (on the paper's hardware, without the locks, towers
    // would be lost — Fig. 7a).
    rig.audit(&keys);
}
