//! Property tests for the batched level-wise traversal engine (DESIGN.md
//! §16): a wave of tagged read-set probes through the batch engine returns
//! exactly the results — hit/miss, record address, CC verdict — that the
//! same probes return one-by-one through the per-probe pipelines.
//!
//! The probes of one wave target *distinct* keys, matching how the
//! softcore groups a transaction's read set (one probe per record): CC
//! side effects on different records commute, so result equivalence is
//! well-defined even though the batch engine resolves probes in a
//! different cycle order than the pipelines.

use bionicdb_coproc::layout::TableState;
use bionicdb_coproc::{CoprocConfig, IndexCoproc};
use bionicdb_fpga::{Dram, FpgaConfig, Region};
use bionicdb_softcore::catalogue::{TableId, TableMeta};
use bionicdb_softcore::request::{BatchMode, CpSlot, DbOp, DbRequest, PartitionId};
use bionicdb_softcore::{DbResult, IndexKey};
use proptest::prelude::*;

const PAYLOAD: u32 = 32;
const GROUP: u64 = (1 << 63) | 7;

struct Rig {
    dram: Dram,
    coproc: IndexCoproc,
    tables: Vec<TableState>,
    now: u64,
    next_block: u64,
}

impl Rig {
    fn new(batch_mode: BatchMode, batch_width: usize) -> Rig {
        let fcfg = FpgaConfig::default();
        let mut dram = Dram::new(&fcfg, 48 << 20);
        let mut cfg = CoprocConfig::from_fpga(&fcfg);
        cfg.batch_mode = batch_mode;
        cfg.batch_width = batch_width;
        let mut coproc = IndexCoproc::new(&cfg, &mut dram);
        coproc.set_max_inflight(64);
        let mut region = Region::new(8 << 20, 36 << 20);
        let hash_dir = region.alloc(8 * 64, 64);
        let skip_dir = region.alloc(8 * 20, 64);
        let tables = vec![
            TableState {
                meta: TableMeta::hash("h", 8, PAYLOAD, 64),
                dir_addr: hash_dir,
                heap: region.carve(12 << 20, 64),
                max_level: 20,
            },
            TableState {
                meta: TableMeta::skiplist("s", 8, PAYLOAD),
                dir_addr: skip_dir,
                heap: region.carve(12 << 20, 64),
                max_level: 20,
            },
        ];
        Rig {
            dram,
            coproc,
            tables,
            now: 0,
            next_block: 4096,
        }
    }

    fn req(&mut self, op: DbOp, table: u8, key: u64, ts: u64, cp: u16, group: u64) -> DbRequest {
        let key_addr = self.next_block;
        let payload_addr = key_addr + 64;
        let out_addr = key_addr + 128;
        self.next_block += 4096;
        assert!(self.next_block < (8 << 20), "rig block area exhausted");
        self.dram
            .host_write(key_addr, IndexKey::from_u64(key).as_bytes());
        let mut p = vec![0xabu8; PAYLOAD as usize];
        p[..8].copy_from_slice(&key.to_le_bytes());
        self.dram.host_write(payload_addr, &p);
        DbRequest {
            op,
            table: TableId(table),
            key_addr,
            payload_addr,
            scan_count: 0,
            out_addr,
            ts,
            cp: CpSlot {
                worker: PartitionId(0),
                index: cp,
            },
            home: PartitionId(0),
            batch_group: group,
        }
    }

    fn run_until_idle(&mut self) -> Vec<(u16, DbResult)> {
        let mut got = Vec::new();
        let mut budget = 4_000_000u64;
        loop {
            while let Some(r) = self.coproc.out.pop() {
                got.push((r.cp.index, DbResult::decode(r.value)));
            }
            if self.coproc.is_idle() {
                break;
            }
            self.now += 1;
            budget -= 1;
            assert!(budget > 0, "coprocessor did not go idle");
            self.dram.tick(self.now);
            self.coproc.tick(self.now, &mut self.dram, &mut self.tables);
        }
        got
    }

    /// Insert `keys` through the pipelines (unbatched) and commit a subset,
    /// leaving the rest dirty so probes exercise the CC reject path too.
    fn build(&mut self, table: u8, keys: &[u64], commit_mask: &[bool]) {
        for (i, &k) in keys.iter().enumerate() {
            let r = self.req(DbOp::Insert, table, k, 10, i as u16, 0);
            self.coproc.input.push(r).expect("input space");
            let got = self.run_until_idle();
            let addr = got[0].1.value().expect("insert ok");
            if commit_mask[i] {
                // Clear the dirty flag the way a committing softcore would.
                let hdr_off = if table == 0 { 8 } else { 0 };
                self.dram.host_write_u64(addr + hdr_off + 16, 0);
            }
        }
    }
}

/// One probe of the generated wave: an op on a key, hit or miss.
#[derive(Debug, Clone, Copy)]
struct ProbeOp {
    op: DbOp,
    key: u64,
}

fn arb_probe_op() -> impl Strategy<Value = (u8, u64)> {
    // (op selector, key). Keys 0..24 may exist; 24..48 always miss.
    (0u8..3, 0u64..48)
}

/// Run the same build + probe wave through a batched and an unbatched rig
/// and require identical per-cp results.
fn check_equivalence(
    table: u8,
    build_keys: &[u64],
    commit_mask: &[bool],
    probes: &[ProbeOp],
    mode: BatchMode,
    width: usize,
) {
    let mut batched = Rig::new(mode, width);
    let mut plain = Rig::new(BatchMode::Off, width);
    batched.build(table, build_keys, commit_mask);
    plain.build(table, build_keys, commit_mask);

    // Same probe wave; only the group tag differs. Distinct keys and ts
    // strictly above the build ts keep CC effects commutative.
    let mut ts = 100;
    for (i, p) in probes.iter().enumerate() {
        ts += 10;
        let rb = batched.req(p.op, table, p.key, ts, i as u16, GROUP);
        let rp = plain.req(p.op, table, p.key, ts, i as u16, 0);
        batched.coproc.input.push(rb).expect("input space");
        plain.coproc.input.push(rp).expect("input space");
    }
    let mut got_b = batched.run_until_idle();
    let mut got_p = plain.run_until_idle();
    // Pipelines complete out of order; compare by cp slot.
    got_b.sort_by_key(|(cp, _)| *cp);
    got_p.sort_by_key(|(cp, _)| *cp);
    prop_assert_eq!(
        &got_b,
        &got_p,
        "batched (mode {:?}, width {}) vs per-probe results differ",
        mode,
        width
    );
    // The batched run really went through the engine (unless there was
    // nothing to divert).
    if !probes.is_empty() && mode != BatchMode::Off {
        let (h, s) = batched.coproc.batch_stats().expect("engines constructed");
        let through_engine = if table == 0 { h.probes } else { s.probes };
        prop_assert_eq!(through_engine, probes.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched ≡ per-probe for both index kinds, arbitrary hit/miss mixes,
    /// dirty tuples, and widths (including degenerate width 1).
    #[test]
    fn batched_probe_wave_equals_per_probe_results(
        table in 0u8..2,
        raw_build in proptest::collection::vec(0u64..24, 1..16),
        commits in proptest::collection::vec(any::<bool>(), 16),
        raw_probes in proptest::collection::vec(arb_probe_op(), 1..24),
        width in prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
    ) {
        // Distinct build keys (the pipelines allow blind duplicate inserts,
        // which would make "the" record address ambiguous).
        let mut build_keys = raw_build;
        build_keys.sort_unstable();
        build_keys.dedup();
        let commit_mask: Vec<bool> = commits[..build_keys.len()].to_vec();
        // Distinct probe keys: CC side effects on distinct records commute.
        let mut seen = std::collections::HashSet::new();
        let probes: Vec<ProbeOp> = raw_probes
            .into_iter()
            .filter(|(_, k)| seen.insert(*k))
            .map(|(sel, key)| ProbeOp {
                op: match sel {
                    0 => DbOp::Search,
                    1 => DbOp::Update,
                    _ => DbOp::Remove,
                },
                key,
            })
            .collect();
        check_equivalence(
            table,
            &build_keys,
            &commit_mask,
            &probes,
            BatchMode::TxnLocal,
            width,
        );
    }
}

/// Mode off is inert even for externally tagged requests: they fall
/// through to the per-probe pipelines and no batch structures exist.
#[test]
fn mode_off_ignores_batch_tags() {
    let mut rig = Rig::new(BatchMode::Off, 8);
    rig.build(0, &[1, 2, 3], &[true, true, true]);
    assert!(rig.coproc.batch_stats().is_none(), "no engines when off");
    assert!(
        !rig.coproc
            .stage_report()
            .iter()
            .any(|(name, _)| name.starts_with("batch.")),
        "no batch stage rows when off"
    );
    let r = rig.req(DbOp::Search, 0, 2, 100, 0, GROUP);
    rig.coproc.input.push(r).expect("space");
    let got = rig.run_until_idle();
    assert_eq!(got.len(), 1);
    assert!(got[0].1.is_ok(), "tagged probe served by the pipeline");
}

/// A trickle narrower than the batch width still completes (age flush).
#[test]
fn undersized_batch_flushes_by_age() {
    let mut rig = Rig::new(BatchMode::TxnLocal, 16);
    rig.build(1, &[5, 9], &[true, true]);
    let r = rig.req(DbOp::Search, 1, 5, 100, 0, GROUP);
    rig.coproc.input.push(r).expect("space");
    let got = rig.run_until_idle();
    assert_eq!(got.len(), 1);
    assert!(got[0].1.is_ok());
    let (_, s) = rig.coproc.batch_stats().expect("engines on");
    assert_eq!(s.probes, 1);
    assert!(s.flush_launches >= 1, "lone probe launched by age flush");
}
