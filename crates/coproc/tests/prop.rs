//! Property tests: the pipelined indexes agree with a reference model
//! (`BTreeMap`) for arbitrary operation sequences.

use bionicdb_coproc::layout::TableState;
use bionicdb_coproc::{CoprocConfig, IndexCoproc};
use bionicdb_fpga::{Dram, FpgaConfig, Region};
use bionicdb_softcore::catalogue::{TableId, TableMeta};
use bionicdb_softcore::request::{CpSlot, DbOp, DbRequest, PartitionId};
use bionicdb_softcore::{DbResult, DbStatus, IndexKey};
use proptest::prelude::*;
use std::collections::BTreeMap;

const PAYLOAD: u32 = 32;

struct Rig {
    dram: Dram,
    coproc: IndexCoproc,
    tables: Vec<TableState>,
    now: u64,
    next_block: u64,
    next_cp: u16,
    ts: u64,
}

impl Rig {
    fn new() -> Rig {
        let fcfg = FpgaConfig::default();
        let mut dram = Dram::new(&fcfg, 48 << 20);
        let coproc = IndexCoproc::new(&CoprocConfig::from_fpga(&fcfg), &mut dram);
        let mut region = Region::new(8 << 20, 36 << 20);
        let hash_dir = region.alloc(8 * 64, 64);
        let skip_dir = region.alloc(8 * 20, 64);
        let tables = vec![
            TableState {
                meta: TableMeta::hash("h", 8, PAYLOAD, 64),
                dir_addr: hash_dir,
                heap: region.carve(12 << 20, 64),
                max_level: 20,
            },
            TableState {
                meta: TableMeta::skiplist("s", 8, PAYLOAD),
                dir_addr: skip_dir,
                heap: region.carve(12 << 20, 64),
                max_level: 20,
            },
        ];
        Rig {
            dram,
            coproc,
            tables,
            now: 0,
            next_block: 4096,
            next_cp: 0,
            ts: 100,
        }
    }

    /// Run one op synchronously and return its decoded result. Committed
    /// semantics: inserts have their dirty bit cleared immediately after,
    /// updates/removes are "committed" by the caller.
    fn run(&mut self, op: DbOp, table: u8, key: u64, payload_tag: u8) -> DbResult {
        let key_addr = self.next_block;
        let payload_addr = key_addr + 64;
        let out_addr = key_addr + 128;
        self.next_block += 4096;
        assert!(self.next_block < (8 << 20));
        let key_bytes = if table == 1 {
            key.to_be_bytes()
        } else {
            key.to_le_bytes()
        };
        self.dram
            .host_write(key_addr, IndexKey::from_bytes(&key_bytes).as_bytes());
        let mut p = vec![payload_tag; PAYLOAD as usize];
        p[..8].copy_from_slice(&key.to_le_bytes());
        self.dram.host_write(payload_addr, &p);
        self.ts += 10;
        let cp = self.next_cp;
        self.next_cp = self.next_cp.wrapping_add(1);
        let req = DbRequest {
            op,
            table: TableId(table),
            key_addr,
            payload_addr,
            scan_count: 16,
            out_addr,
            ts: self.ts,
            cp: CpSlot {
                worker: PartitionId(0),
                index: cp,
            },
            home: PartitionId(0),
            batch_group: 0,
        };
        self.coproc.input.push(req).expect("space");
        let mut result = None;
        let mut budget = 2_000_000;
        while result.is_none() {
            self.now += 1;
            budget -= 1;
            assert!(budget > 0, "op did not complete");
            self.dram.tick(self.now);
            self.coproc.tick(self.now, &mut self.dram, &mut self.tables);
            while let Some(r) = self.coproc.out.pop() {
                assert_eq!(r.cp.index, cp);
                result = Some(DbResult::decode(r.value));
            }
        }
        let r = result.unwrap();
        // Commit effects immediately (serial reference semantics).
        if let DbResult::Ok(addr) = r {
            match op {
                DbOp::Insert => {
                    let hdr_off = if table == 0 { 8 } else { 0 };
                    self.dram.host_write_u64(addr + hdr_off + 16, 0);
                }
                DbOp::Update => {
                    let hdr_off = if table == 0 { 8 } else { 0 };
                    // Apply the payload write then clear dirty + stamp ts.
                    let pay_off = if table == 0 {
                        bionicdb_coproc::layout::TUPLE_PAYLOAD
                    } else {
                        let h = self.dram.host_read_u64(addr + 64) as usize;
                        TableState::tower_payload_off(h)
                    };
                    self.dram
                        .host_write(addr + pay_off, &vec![payload_tag; PAYLOAD as usize]);
                    self.dram.host_write_u64(addr + hdr_off, self.ts);
                    self.dram.host_write_u64(addr + hdr_off + 16, 0);
                }
                DbOp::Remove => {
                    let hdr_off = if table == 0 { 8 } else { 0 };
                    self.dram.host_write_u64(addr + hdr_off, self.ts);
                    self.dram.host_write_u64(
                        addr + hdr_off + 16,
                        bionicdb_coproc::layout::FLAG_TOMBSTONE,
                    );
                }
                _ => {}
            }
        }
        r
    }
}

/// Model operation.
#[derive(Debug, Clone, Copy)]
enum ModelOp {
    Insert(u64, u8),
    Search(u64),
    Update(u64, u8),
    Remove(u64),
    Scan(u64),
}

fn arb_op() -> impl Strategy<Value = ModelOp> {
    let key = 0u64..48;
    prop_oneof![
        (key.clone(), any::<u8>()).prop_map(|(k, t)| ModelOp::Insert(k, t)),
        key.clone().prop_map(ModelOp::Search),
        (key.clone(), any::<u8>()).prop_map(|(k, t)| ModelOp::Update(k, t)),
        key.clone().prop_map(ModelOp::Remove),
        key.prop_map(ModelOp::Scan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A serial stream of committed operations through either pipeline
    /// agrees exactly with a BTreeMap reference model.
    #[test]
    fn pipeline_agrees_with_model(
        table in 0u8..2,
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let mut rig = Rig::new();
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for op in ops {
            match op {
                ModelOp::Insert(k, tag) => {
                    // Blind insert (the pipelines allow duplicates); keep the
                    // model faithful by skipping duplicate inserts entirely.
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        let r = rig.run(DbOp::Insert, table, k, tag);
                        prop_assert!(r.is_ok());
                        e.insert(tag);
                    }
                }
                ModelOp::Search(k) => {
                    let r = rig.run(DbOp::Search, table, k, 0);
                    match model.get(&k) {
                        Some(_) => prop_assert!(r.is_ok(), "key {k} should be found: {r:?}"),
                        None => prop_assert_eq!(r, DbResult::Err(DbStatus::NotFound)),
                    }
                }
                ModelOp::Update(k, tag) => {
                    let r = rig.run(DbOp::Update, table, k, tag);
                    match model.get_mut(&k) {
                        Some(v) => {
                            prop_assert!(r.is_ok(), "update of {k}: {r:?}");
                            *v = tag;
                        }
                        None => prop_assert_eq!(r, DbResult::Err(DbStatus::NotFound)),
                    }
                }
                ModelOp::Remove(k) => {
                    let r = rig.run(DbOp::Remove, table, k, 0);
                    match model.remove(&k) {
                        Some(_) => prop_assert!(r.is_ok()),
                        None => prop_assert_eq!(r, DbResult::Err(DbStatus::NotFound)),
                    }
                }
                ModelOp::Scan(k) => {
                    if table == 1 {
                        let r = rig.run(DbOp::Scan, table, k, 0);
                        let expect = model.range(k..).take(16).count() as u64;
                        prop_assert_eq!(r, DbResult::Ok(expect), "scan from {}", k);
                    }
                }
            }
        }
    }
}
