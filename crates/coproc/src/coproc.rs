//! The index coprocessor facade: admission control, routing, write-back.
//!
//! One [`IndexCoproc`] serves one partition worker. The worker glue pushes
//! DB requests into [`IndexCoproc::input`] — foreground requests from the
//! local softcore and background requests caught on the on-chip request
//! channel (paper §4.2 step 4) — and drains completed [`DbResponse`]s from
//! [`IndexCoproc::out`], routing each to the local CP register file or back
//! over the response channel.
//!
//! The coprocessor bounds the number of in-flight DB instructions
//! ([`CoprocConfig::max_inflight`]); this is the "index parallelism" knob
//! swept on the x-axis of the paper's Figs. 10 and 11.

use bionicdb_fpga::{Dram, Fifo, FpgaConfig};
use bionicdb_softcore::catalogue::IndexKind;
use bionicdb_softcore::request::{BatchMode, DbOp, DbRequest, DbResponse};
use bionicdb_softcore::{DbResult, DbStatus};

use crate::batch::{BatchEngine, BatchStats};
use crate::hash::{HashPipeline, HashStats};
use crate::layout::TableState;
use crate::skiplist::{SkipPipeline, SkipStats};

/// Configuration of one index coprocessor.
#[derive(Debug, Clone, Copy)]
pub struct CoprocConfig {
    /// Depth of inter-stage FIFOs.
    pub fifo_depth: usize,
    /// Outstanding-request slots per multi-slot stage.
    pub slots: usize,
    /// Number of hash Traverse stages.
    pub traverse_stages: usize,
    /// Total skiplist stages (including the bottom stage).
    pub skiplist_stages: usize,
    /// Number of scanner modules.
    pub scanners: usize,
    /// Skiplist maximum tower height.
    pub max_level: usize,
    /// Maximum in-flight DB instructions over this coprocessor.
    pub max_inflight: usize,
    /// Enable the BRAM lock tables (paper's hazard prevention). Disabling
    /// them reproduces the anomalies of paper Figs. 6a and 7a.
    pub hazard_prevention: bool,
    /// Maximum probes per level-wise traversal batch (see [`BatchEngine`]).
    /// Ignored while `batch_mode` is `Off`.
    pub batch_width: usize,
    /// Probe-batching mode. `Off` (the default) is bit-inert: the batch
    /// engines are not even constructed, so no extra DRAM ports exist.
    pub batch_mode: BatchMode,
}

impl CoprocConfig {
    /// Derive from the fabric configuration.
    pub fn from_fpga(cfg: &FpgaConfig) -> Self {
        CoprocConfig {
            fifo_depth: cfg.stage_fifo_depth,
            slots: 4,
            traverse_stages: cfg.hash_traverse_stages,
            skiplist_stages: cfg.skiplist_stages,
            scanners: cfg.skiplist_scanners,
            max_level: cfg.skiplist_max_level,
            max_inflight: cfg.max_inflight_db,
            hazard_prevention: true,
            batch_width: 8,
            batch_mode: BatchMode::Off,
        }
    }
}

/// Aggregate statistics of one coprocessor.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoprocStats {
    /// Requests admitted into a pipeline.
    pub admitted: u64,
    /// Responses completed.
    pub completed: u64,
    /// Requests rejected as malformed (wrong index kind for the op).
    pub bad_requests: u64,
    /// Integral of in-flight count over cycles (for mean occupancy).
    pub inflight_integral: u64,
    /// Cycles observed.
    pub cycles: u64,
}

impl CoprocStats {
    /// Mean number of in-flight operations per cycle.
    pub fn mean_inflight(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.inflight_integral as f64 / self.cycles as f64
        }
    }
}

/// One partition worker's index coprocessor.
#[derive(Debug)]
pub struct IndexCoproc {
    /// Request admission queue (foreground + background merged).
    pub input: Fifo<DbRequest>,
    hash: HashPipeline,
    skip: SkipPipeline,
    /// Level-wise batched probe engines (hash, skiplist). `None` when
    /// [`CoprocConfig::batch_mode`] is `Off` — construction would register
    /// DRAM ports, which the bit-inert default must not do.
    batch_hash: Option<BatchEngine>,
    batch_skip: Option<BatchEngine>,
    inflight: usize,
    max_inflight: usize,
    /// Completed responses for the worker glue to route.
    pub out: Fifo<DbResponse>,
    stats: CoprocStats,
}

impl IndexCoproc {
    /// Build a coprocessor, registering all stage ports on `dram`.
    pub fn new(cfg: &CoprocConfig, dram: &mut Dram) -> Self {
        IndexCoproc {
            input: Fifo::new(64),
            hash: HashPipeline::new(
                dram,
                cfg.fifo_depth,
                cfg.slots,
                cfg.traverse_stages,
                cfg.hazard_prevention,
            ),
            skip: SkipPipeline::new(
                dram,
                cfg.fifo_depth,
                cfg.slots,
                cfg.skiplist_stages,
                cfg.scanners,
                cfg.max_level,
                cfg.hazard_prevention,
            ),
            batch_hash: (cfg.batch_mode != BatchMode::Off)
                .then(|| BatchEngine::new(dram, IndexKind::Hash, cfg.batch_width)),
            batch_skip: (cfg.batch_mode != BatchMode::Off)
                .then(|| BatchEngine::new(dram, IndexKind::Skiplist, cfg.batch_width)),
            inflight: 0,
            max_inflight: cfg.max_inflight,
            out: Fifo::new(64),
            stats: CoprocStats::default(),
        }
    }

    /// Change the in-flight bound (used by the Fig. 10/11 sweeps).
    pub fn set_max_inflight(&mut self, n: usize) {
        self.max_inflight = n.max(1);
    }

    /// Current number of admitted-but-incomplete operations.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CoprocStats {
        self.stats
    }

    /// Hash pipeline statistics.
    pub fn hash_stats(&self) -> HashStats {
        self.hash.stats()
    }

    /// Skiplist pipeline statistics.
    pub fn skip_stats(&self) -> SkipStats {
        self.skip.stats()
    }

    /// Batch-engine counters when batching is enabled: `(hash, skiplist)`.
    pub fn batch_stats(&self) -> Option<(BatchStats, BatchStats)> {
        match (&self.batch_hash, &self.batch_skip) {
            (Some(h), Some(s)) => Some((h.stats(), s.stats())),
            _ => None,
        }
    }

    /// Every pipeline stage's utilization counters under one label each:
    /// the hash pipeline's fixed stages and Traverse stages, then the
    /// skiplist's traversal/bottom/scanner stages. This is the per-stage
    /// occupancy export the `MachineReport` aggregates.
    pub fn stage_report(&self) -> Vec<(String, bionicdb_fpga::stats::StageStats)> {
        let h = self.hash.stats();
        let mut v = vec![
            ("hash.keyfetch".to_string(), h.keyfetch),
            ("hash.hash".to_string(), h.hash),
            ("hash.install".to_string(), h.install),
            ("hash.headfetch".to_string(), h.headfetch),
            ("hash.compare".to_string(), h.compare),
        ];
        for (i, t) in self.hash.traverse_stats().into_iter().enumerate() {
            v.push((format!("hash.traverse[{i}]"), t));
        }
        v.extend(self.skip.stage_stats());
        // Only present when batching is on, keeping mode-off reports
        // byte-identical.
        if let Some(b) = &self.batch_hash {
            v.push(("batch.hash".to_string(), b.stage_stats()));
        }
        if let Some(b) = &self.batch_skip {
            v.push(("batch.skip".to_string(), b.stage_stats()));
        }
        v
    }

    /// True when nothing is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty()
            && self.inflight == 0
            && self.hash.is_idle()
            && self.skip.is_idle()
            && self.batch_hash.as_ref().is_none_or(BatchEngine::is_idle)
            && self.batch_skip.as_ref().is_none_or(BatchEngine::is_idle)
            && self.out.is_empty()
    }

    /// Fast-forward support: the earliest future cycle at which admission,
    /// collection, or either pipeline could make progress or mutate a
    /// statistic. `None` when everything in flight is purely waiting on
    /// DRAM. The per-cycle `cycles`/`inflight_integral` accounting is *not*
    /// an event — [`Self::skip`] replays it in bulk for skipped spans.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if !self.hash.out.is_empty()
            || !self.skip.out.is_empty()
            || (!self.input.is_empty() && self.inflight < self.max_inflight)
        {
            return Some(now + 1);
        }
        [
            self.hash.next_event(now),
            self.skip.next_event(now),
            self.batch_hash.as_ref().and_then(|b| b.next_event(now)),
            self.batch_skip.as_ref().and_then(|b| b.next_event(now)),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Fast-forward support: account for `k` skipped cycles. The coproc
    /// accrues `cycles` and `inflight_integral` on *every* tick (idle or
    /// not), so the machine must call this for every skipped span.
    pub fn skip(&mut self, k: u64) {
        self.stats.cycles += k;
        self.stats.inflight_integral += self.inflight as u64 * k;
        self.hash.skip(k);
        self.skip.skip(k);
        if let Some(b) = &mut self.batch_hash {
            b.skip(k);
        }
        if let Some(b) = &mut self.batch_skip {
            b.skip(k);
        }
    }

    /// Advance the coprocessor by one cycle.
    pub fn tick(&mut self, now: u64, dram: &mut Dram, tables: &mut [TableState]) {
        self.stats.cycles += 1;
        self.stats.inflight_integral += self.inflight as u64;

        // Collect completions from both pipelines and the batch engines.
        while self.out.has_space() {
            let resp = self
                .hash
                .out
                .pop()
                .or_else(|| self.skip.out.pop())
                .or_else(|| self.batch_hash.as_mut().and_then(BatchEngine::pop_out))
                .or_else(|| self.batch_skip.as_mut().and_then(BatchEngine::pop_out));
            let Some(resp) = resp else {
                break;
            };
            self.out.push(resp).expect("space checked");
            self.inflight -= 1;
            self.stats.completed += 1;
        }

        self.hash.tick(now, dram, tables);
        self.skip.tick(now, dram, tables);
        if let Some(b) = &mut self.batch_hash {
            b.tick(now, dram, tables, Some(&self.hash));
        }
        if let Some(b) = &mut self.batch_skip {
            b.tick(now, dram, tables, None);
        }

        // Admit new requests under the in-flight bound.
        while self.inflight < self.max_inflight {
            let Some(req) = self.input.peek().copied() else {
                break;
            };
            let kind = tables[req.table.0 as usize].meta.kind;
            // Tagged read-set probes divert to the level-wise batch engine
            // of their index kind (inserts and scans keep the pipelines).
            if req.batch_group != 0
                && matches!(req.op, DbOp::Search | DbOp::Update | DbOp::Remove)
            {
                let engine = match kind {
                    IndexKind::Hash => self.batch_hash.as_mut(),
                    IndexKind::Skiplist => self.batch_skip.as_mut(),
                };
                if let Some(engine) = engine {
                    if engine.offer(req, now) {
                        self.input.pop();
                        self.inflight += 1;
                        self.stats.admitted += 1;
                        continue;
                    }
                    break; // engine full: head-of-line block, like a pipeline
                }
                // Mode off: an externally tagged request falls through to
                // the per-probe pipelines.
            }
            let ok = match (kind, req.op) {
                (IndexKind::Hash, DbOp::Scan) => {
                    // Scans require a skiplist; reject as malformed.
                    if self.out.has_space() {
                        self.input.pop();
                        self.out
                            .push(DbResponse {
                                cp: req.cp,
                                value: DbResult::Err(DbStatus::BadRequest).encode(),
                            })
                            .expect("space checked");
                        self.stats.bad_requests += 1;
                        continue;
                    }
                    break;
                }
                (IndexKind::Hash, _) => self.hash.input.push(req).is_ok(),
                (IndexKind::Skiplist, _) => self.skip.input.push(req).is_ok(),
            };
            if !ok {
                break;
            }
            self.input.pop();
            self.inflight += 1;
            self.stats.admitted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_fpga::Region;
    use bionicdb_softcore::catalogue::{TableId, TableMeta};
    use bionicdb_softcore::request::{CpSlot, PartitionId};
    use bionicdb_softcore::IndexKey;

    /// Test harness: one coprocessor over a private DRAM with one hash
    /// table (table 0) and one skiplist table (table 1).
    pub(crate) struct Rig {
        pub dram: Dram,
        pub coproc: IndexCoproc,
        pub tables: Vec<TableState>,
        pub now: u64,
        pub responses: Vec<DbResponse>,
        next_block: u64,
    }

    pub(crate) const PAYLOAD: u32 = 64;

    impl Rig {
        pub fn new(hazard_prevention: bool) -> Self {
            Self::with_batching(hazard_prevention, BatchMode::Off, 8)
        }

        /// Build a rig with the batch engines enabled (used by the batched
        /// vs. per-probe equivalence tests).
        pub fn with_batching(
            hazard_prevention: bool,
            batch_mode: BatchMode,
            batch_width: usize,
        ) -> Self {
            let fcfg = FpgaConfig::default();
            let mut dram = Dram::new(&fcfg, 64 << 20);
            let mut cfg = CoprocConfig::from_fpga(&fcfg);
            cfg.hazard_prevention = hazard_prevention;
            cfg.batch_mode = batch_mode;
            cfg.batch_width = batch_width;
            let coproc = IndexCoproc::new(&cfg, &mut dram);
            // Transaction blocks are staged below 8 MiB; table state above it.
            let mut region = Region::new(8 << 20, 48 << 20);
            let hash_meta = TableMeta::hash("h", 8, PAYLOAD, 256);
            let skip_meta = TableMeta::skiplist("s", 8, PAYLOAD);
            let hash_dir = region.alloc(8 * 256, 64);
            let skip_dir = region.alloc(8 * 20, 64);
            let tables = vec![
                TableState {
                    meta: hash_meta,
                    dir_addr: hash_dir,
                    heap: region.carve(16 << 20, 64),
                    max_level: 20,
                },
                TableState {
                    meta: skip_meta,
                    dir_addr: skip_dir,
                    heap: region.carve(16 << 20, 64),
                    max_level: 20,
                },
            ];
            Rig {
                dram,
                coproc,
                tables,
                now: 0,
                responses: Vec::new(),
                next_block: 4096,
            }
        }

        /// Stage key/payload bytes in "transaction block" space and build a
        /// request.
        pub fn req(&mut self, op: DbOp, table: u8, key: u64, ts: u64, cp: u16) -> DbRequest {
            let key_addr = self.next_block;
            let payload_addr = key_addr + 64;
            let out_addr = key_addr + 256;
            self.next_block += 4096;
            assert!(self.next_block < (8 << 20), "test rig block area exhausted");
            self.dram
                .host_write(key_addr, IndexKey::from_u64(key).as_bytes());
            let mut payload = vec![0u8; PAYLOAD as usize];
            payload[..8].copy_from_slice(&key.to_le_bytes());
            self.dram.host_write(payload_addr, &payload);
            DbRequest {
                op,
                table: TableId(table),
                key_addr,
                payload_addr,
                scan_count: 0,
                out_addr,
                ts,
                cp: CpSlot {
                    worker: PartitionId(0),
                    index: cp,
                },
                home: PartitionId(0),
                batch_group: 0,
            }
        }

        pub fn submit(&mut self, req: DbRequest) {
            self.coproc.input.push(req).expect("input space");
        }

        pub fn run_until_idle(&mut self) {
            let mut budget = 4_000_000u64;
            while !self.coproc.is_idle() || !self.coproc.out.is_empty() {
                self.now += 1;
                budget -= 1;
                assert!(
                    budget > 0,
                    "coprocessor did not go idle: {:#?}",
                    self.coproc
                );
                self.dram.tick(self.now);
                self.coproc.tick(self.now, &mut self.dram, &mut self.tables);
                while let Some(r) = self.coproc.out.pop() {
                    self.responses.push(r);
                }
            }
        }

        pub fn run_ops(&mut self, ops: Vec<DbRequest>) -> Vec<DbResult> {
            let start = self.responses.len();
            for op in ops {
                self.submit(op);
                // Keep the input queue from overflowing for large batches.
                if self.coproc.input.len() > 48 {
                    self.run_until_idle();
                }
            }
            self.run_until_idle();
            self.responses[start..]
                .iter()
                .map(|r| DbResult::decode(r.value))
                .collect()
        }

        pub fn result_for_cp(&self, cp: u16) -> DbResult {
            let r = self
                .responses
                .iter()
                .find(|r| r.cp.index == cp)
                .unwrap_or_else(|| panic!("no response for cp {cp}"));
            DbResult::decode(r.value)
        }
    }

    #[test]
    fn hash_insert_then_search_finds_tuple() {
        let mut rig = Rig::new(true);
        let ins = rig.req(DbOp::Insert, 0, 42, 10, 0);
        let results = rig.run_ops(vec![ins]);
        let addr = results[0].value().expect("insert ok");

        // Uncommitted (dirty): a later search is blindly rejected.
        let s_dirty = rig.req(DbOp::Search, 0, 42, 20, 1);
        let r = rig.run_ops(vec![s_dirty]);
        assert_eq!(r[0], DbResult::Err(DbStatus::Dirty));

        // Commit it (clear dirty, set write_ts) the way the softcore would.
        let hdr_addr = addr + crate::layout::TUPLE_HEADER;
        rig.dram.host_write_u64(hdr_addr + 16, 0); // flags = 0
        let s_ok = rig.req(DbOp::Search, 0, 42, 30, 2);
        let r = rig.run_ops(vec![s_ok]);
        assert_eq!(r[0], DbResult::Ok(addr));

        // Read timestamp advanced to 30.
        let hdr = crate::layout::read_header(&rig.dram, hdr_addr);
        assert_eq!(hdr.read_ts, 30);
    }

    #[test]
    fn hash_search_missing_key_not_found() {
        let mut rig = Rig::new(true);
        let s = rig.req(DbOp::Search, 0, 999, 10, 0);
        let r = rig.run_ops(vec![s]);
        assert_eq!(r[0], DbResult::Err(DbStatus::NotFound));
    }

    #[test]
    fn hash_chain_traversal_finds_colliding_keys() {
        // With 256 buckets and 600 keys, chains of length ≥ 2 must exist.
        // Responses complete out of order (pipelining!), so results are
        // matched by CP slot, not submission order.
        let mut rig = Rig::new(true);
        let n = 600u64;
        let inserts: Vec<_> = (0..n)
            .map(|k| rig.req(DbOp::Insert, 0, k, 10, k as u16))
            .collect();
        rig.run_ops(inserts);
        let mut addrs = vec![0u64; n as usize];
        for k in 0..n {
            let r = rig.result_for_cp(k as u16);
            addrs[k as usize] = r.value().expect("insert ok");
        }
        for &a in &addrs {
            rig.dram
                .host_write_u64(a + crate::layout::TUPLE_HEADER + 16, 0);
        }
        rig.responses.clear();
        let searches: Vec<_> = (0..n)
            .map(|k| rig.req(DbOp::Search, 0, k, 20, k as u16))
            .collect();
        rig.run_ops(searches);
        for k in 0..n {
            assert_eq!(
                rig.result_for_cp(k as u16),
                DbResult::Ok(addrs[k as usize]),
                "key {k}"
            );
        }
        assert!(
            rig.coproc.hash_stats().traversed > 0,
            "some chains were walked"
        );
    }

    #[test]
    fn hash_update_marks_dirty_and_conflicts_reject() {
        let mut rig = Rig::new(true);
        let ins = rig.req(DbOp::Insert, 0, 7, 10, 0);
        let res = rig.run_ops(vec![ins]);
        let addr = res[0].value().unwrap();
        rig.dram
            .host_write_u64(addr + crate::layout::TUPLE_HEADER + 16, 0);

        let upd = rig.req(DbOp::Update, 0, 7, 20, 1);
        let res = rig.run_ops(vec![upd]);
        assert_eq!(res[0], DbResult::Ok(addr));
        let hdr = crate::layout::read_header(&rig.dram, addr + crate::layout::TUPLE_HEADER);
        assert!(hdr.is_dirty());

        // Another transaction hitting the dirty tuple gets rejected.
        let s = rig.req(DbOp::Search, 0, 7, 30, 2);
        let res = rig.run_ops(vec![s]);
        assert_eq!(res[0], DbResult::Err(DbStatus::Dirty));
    }

    #[test]
    fn hash_update_rejected_by_later_reader_timestamp() {
        let mut rig = Rig::new(true);
        let ins = rig.req(DbOp::Insert, 0, 7, 10, 0);
        let res = rig.run_ops(vec![ins]);
        let addr = res[0].value().unwrap();
        rig.dram
            .host_write_u64(addr + crate::layout::TUPLE_HEADER + 16, 0);

        // Reader at ts=50 bumps read_ts.
        let s = rig.req(DbOp::Search, 0, 7, 50, 1);
        rig.run_ops(vec![s]);
        // Writer at ts=40 must be rejected (write below read_ts).
        let upd = rig.req(DbOp::Update, 0, 7, 40, 2);
        let res = rig.run_ops(vec![upd]);
        assert_eq!(res[0], DbResult::Err(DbStatus::CcConflict));
    }

    #[test]
    fn hash_remove_sets_tombstone_and_hides_tuple() {
        let mut rig = Rig::new(true);
        let ins = rig.req(DbOp::Insert, 0, 5, 10, 0);
        let res = rig.run_ops(vec![ins]);
        let addr = res[0].value().unwrap();
        rig.dram
            .host_write_u64(addr + crate::layout::TUPLE_HEADER + 16, 0);

        let rm = rig.req(DbOp::Remove, 0, 5, 20, 1);
        let res = rig.run_ops(vec![rm]);
        assert_eq!(res[0], DbResult::Ok(addr));
        // Simulate commit of the remove: clear dirty, keep tombstone.
        rig.dram.host_write_u64(
            addr + crate::layout::TUPLE_HEADER + 16,
            crate::layout::FLAG_TOMBSTONE,
        );
        let s = rig.req(DbOp::Search, 0, 5, 30, 2);
        let res = rig.run_ops(vec![s]);
        assert_eq!(res[0], DbResult::Err(DbStatus::NotFound));
    }

    #[test]
    fn insert_after_insert_hazard_prevented_by_lock_table() {
        // Two concurrent inserts of keys that share a bucket. With hazard
        // prevention both survive on the chain; without it, the classic
        // lost-update of paper Fig. 6a occurs.
        let colliding_pair = |rig: &mut Rig| {
            // Find two keys in the same bucket of the 256-entry table.
            let h0 = crate::sdbm::bucket_of(
                crate::sdbm::sdbm_hash(IndexKey::from_u64(1).as_bytes()),
                256,
            );
            let k2 = (2..)
                .find(|&k| {
                    crate::sdbm::bucket_of(
                        crate::sdbm::sdbm_hash(IndexKey::from_u64(k).as_bytes()),
                        256,
                    ) == h0
                })
                .unwrap();
            let a = rig.req(DbOp::Insert, 0, 1, 10, 0);
            let b = rig.req(DbOp::Insert, 0, k2, 11, 1);
            (a, b, k2)
        };

        // With prevention: both keys findable.
        let mut rig = Rig::new(true);
        let (a, b, k2) = colliding_pair(&mut rig);
        let res = rig.run_ops(vec![a, b]);
        for r in &res {
            let addr = r.value().expect("insert ok");
            rig.dram
                .host_write_u64(addr + crate::layout::TUPLE_HEADER + 16, 0);
        }
        let s1 = rig.req(DbOp::Search, 0, 1, 20, 2);
        let s2 = rig.req(DbOp::Search, 0, k2, 20, 3);
        let res = rig.run_ops(vec![s1, s2]);
        assert!(
            res[0].is_ok() && res[1].is_ok(),
            "both inserts survive with lock table"
        );
        assert!(
            rig.coproc.hash_stats().lock_stalls > 0,
            "second insert stalled"
        );

        // Without prevention: the first insert is lost (both saw head=NULL).
        let mut rig = Rig::new(false);
        let (a, b, k2) = colliding_pair(&mut rig);
        let res = rig.run_ops(vec![a, b]);
        for r in &res {
            let addr = r.value().expect("insert 'ok' (but racy)");
            rig.dram
                .host_write_u64(addr + crate::layout::TUPLE_HEADER + 16, 0);
        }
        let s1 = rig.req(DbOp::Search, 0, 1, 20, 2);
        let s2 = rig.req(DbOp::Search, 0, k2, 20, 3);
        let res = rig.run_ops(vec![s1, s2]);
        let found = res.iter().filter(|r| r.is_ok()).count();
        assert_eq!(
            found, 1,
            "insert-after-insert hazard loses one tuple without locks"
        );
    }

    #[test]
    fn scan_on_hash_table_is_bad_request() {
        let mut rig = Rig::new(true);
        let mut s = rig.req(DbOp::Scan, 0, 1, 10, 0);
        s.scan_count = 5;
        let res = rig.run_ops(vec![s]);
        assert_eq!(res[0], DbResult::Err(DbStatus::BadRequest));
    }

    // ----- skiplist -----

    fn commit_all(rig: &mut Rig, addrs: &[u64]) {
        for &a in addrs {
            // Tower header is at offset 0; flags at +16.
            rig.dram.host_write_u64(a + 16, 0);
        }
    }

    #[test]
    fn skiplist_insert_search_roundtrip() {
        let mut rig = Rig::new(true);
        let keys = [50u64, 10, 30, 70, 20, 60, 40];
        let inserts: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| rig.req(DbOp::Insert, 1, k, 10, i as u16))
            .collect();
        let res = rig.run_ops(inserts);
        let addrs: Vec<u64> = res.iter().map(|r| r.value().expect("insert ok")).collect();
        commit_all(&mut rig, &addrs);
        for (i, &k) in keys.iter().enumerate() {
            let s = rig.req(DbOp::Search, 1, k, 20, (10 + i) as u16);
            let res = rig.run_ops(vec![s]);
            assert_eq!(res[0], DbResult::Ok(addrs[i]), "key {k}");
        }
        // Missing keys are NotFound.
        let s = rig.req(DbOp::Search, 1, 55, 20, 40);
        let res = rig.run_ops(vec![s]);
        assert_eq!(res[0], DbResult::Err(DbStatus::NotFound));
    }

    #[test]
    fn skiplist_scan_returns_sorted_visible_range() {
        let mut rig = Rig::new(true);
        let keys: Vec<u64> = (0..40).map(|i| i * 10).collect();
        let inserts: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| rig.req(DbOp::Insert, 1, k, 10, (i % 60) as u16))
            .collect();
        let res = rig.run_ops(inserts);
        let addrs: Vec<u64> = res.iter().map(|r| r.value().expect("insert ok")).collect();
        commit_all(&mut rig, &addrs);

        // Scan 10 tuples from key 95 -> keys 100,110,...,190.
        let mut s = rig.req(DbOp::Scan, 1, 95, 20, 63);
        s.scan_count = 10;
        let out_addr = s.out_addr;
        let res = rig.run_ops(vec![s]);
        assert_eq!(res[0], DbResult::Ok(10));
        for i in 0..10u64 {
            let got = rig.dram.host_read(out_addr + i * PAYLOAD as u64, 8);
            let k = u64::from_le_bytes(got.try_into().unwrap());
            assert_eq!(k, 100 + i * 10, "scan result {i} in key order");
        }
    }

    #[test]
    fn skiplist_scan_skips_uncommitted_and_future_tuples() {
        let mut rig = Rig::new(true);
        let inserts: Vec<_> = (0..10u64)
            .map(|k| rig.req(DbOp::Insert, 1, k, 10, k as u16))
            .collect();
        let res = rig.run_ops(inserts);
        let addrs: Vec<u64> = res.iter().map(|r| r.value().unwrap()).collect();
        // Commit only even keys; key 4 stays dirty.
        for (k, &a) in addrs.iter().enumerate() {
            if k % 2 == 0 && k != 4 {
                rig.dram.host_write_u64(a + 16, 0);
            }
        }
        let mut s = rig.req(DbOp::Scan, 1, 0, 20, 30);
        s.scan_count = 10;
        let res = rig.run_ops(vec![s]);
        // Visible: keys 0, 2, 6, 8 (committed, ts 10 <= 20).
        assert_eq!(res[0], DbResult::Ok(4));
    }

    #[test]
    fn skiplist_scan_stops_at_count_and_end() {
        let mut rig = Rig::new(true);
        let inserts: Vec<_> = (0..5u64)
            .map(|k| rig.req(DbOp::Insert, 1, k, 10, k as u16))
            .collect();
        let res = rig.run_ops(inserts);
        let addrs: Vec<u64> = res.iter().map(|r| r.value().unwrap()).collect();
        commit_all(&mut rig, &addrs);
        let mut s = rig.req(DbOp::Scan, 1, 0, 20, 30);
        s.scan_count = 50; // longer than the table
        let res = rig.run_ops(vec![s]);
        assert_eq!(res[0], DbResult::Ok(5), "scan stops at end of list");
    }

    #[test]
    fn skiplist_concurrent_inserts_all_linked_at_every_level() {
        // Pipelined inserts of shuffled keys; afterwards every level-0 link
        // must contain all keys in order, and upper levels must be
        // consistent sub-chains (no lost towers — paper Fig. 7).
        let mut rig = Rig::new(true);
        let mut keys: Vec<u64> = (0..300).map(|i| (i * 37) % 1000).collect();
        keys.sort_unstable();
        keys.dedup();
        let shuffled: Vec<u64> = keys.iter().rev().copied().collect();
        let inserts: Vec<_> = shuffled
            .iter()
            .enumerate()
            .map(|(i, &k)| rig.req(DbOp::Insert, 1, k, 10, (i % 60) as u16))
            .collect();
        let res = rig.run_ops(inserts);
        assert!(res.iter().all(|r| r.is_ok()));

        let table = &rig.tables[1];
        // Walk level 0 and compare with the sorted key set.
        let mut got = Vec::new();
        let mut cur = rig.dram.host_read_u64(table.head_next_addr(0));
        while cur != 0 {
            let hdr = crate::layout::read_header(&rig.dram, cur);
            got.push(hdr.key.to_u64());
            cur = rig.dram.host_read_u64(cur + TOWER_NEXTS_TEST);
        }
        assert_eq!(got, keys, "level-0 chain holds every key in order");

        // Every upper level must be a sorted subsequence of the keys whose
        // towers are tall enough.
        for level in 1..8 {
            let mut cur = rig.dram.host_read_u64(table.head_next_addr(level));
            let mut prev = None;
            while cur != 0 {
                let hdr = crate::layout::read_header(&rig.dram, cur);
                let k = hdr.key.to_u64();
                if let Some(p) = prev {
                    assert!(k > p, "level {level} ordered");
                }
                let height = rig.dram.host_read_u64(cur + 64) as usize;
                assert!(height > level, "tower on level {level} tall enough");
                prev = Some(k);
                cur = rig
                    .dram
                    .host_read_u64(cur + TOWER_NEXTS_TEST + 8 * level as u64);
            }
        }
        // No tower lost at its full height: count towers per level matches
        // the deterministic heights.
        for level in 0..8 {
            let expected = keys
                .iter()
                .filter(|&&k| crate::skiplist::tower_height(&IndexKey::from_u64(k), 20) > level)
                .count();
            let mut n = 0;
            let mut cur = rig.dram.host_read_u64(table.head_next_addr(level));
            while cur != 0 {
                n += 1;
                cur = rig
                    .dram
                    .host_read_u64(cur + TOWER_NEXTS_TEST + 8 * level as u64);
            }
            assert_eq!(n, expected, "level {level} tower count");
        }
    }

    const TOWER_NEXTS_TEST: u64 = crate::layout::TOWER_NEXTS;

    /// Host-side audit: after a storm of pipelined inserts, every bucket chain
    /// must be walkable, contain every key exactly once, and match the
    /// addresses reported through the CP registers.
    #[test]
    fn hash_chains_consistent_after_pipelined_inserts() {
        use bionicdb_softcore::request::DbOp;
        let mut rig = Rig::new(true);
        let n = 600u64;
        let inserts: Vec<_> = (0..n)
            .map(|k| rig.req(DbOp::Insert, 0, k, 10, k as u16))
            .collect();
        rig.run_ops(inserts);
        let mut addrs = vec![0u64; n as usize];
        for k in 0..n {
            addrs[k as usize] = rig.result_for_cp(k as u16).value().unwrap();
        }
        // Host-side walk of every bucket.
        let mut found: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        let dir = rig.tables[0].dir_addr;
        for b in 0..256u64 {
            let mut cur = rig.dram.host_read_u64(dir + 8 * b);
            let mut steps = 0;
            let mut chain = vec![];
            while cur != 0 {
                if cur >= rig.dram.capacity() {
                    panic!("bucket {b}: garbage ptr {cur:#x} after chain {chain:?}");
                }
                let hdr = crate::layout::read_header(&rig.dram, cur + crate::layout::TUPLE_HEADER);
                found.entry(hdr.key.to_u64()).or_default().push(cur);
                chain.push((cur, hdr.key.to_u64()));
                cur = rig.dram.host_read_u64(cur);
                steps += 1;
                assert!(steps < 10000, "cycle in bucket {b}");
            }
        }
        let mut missing = 0;
        let mut dups = 0;
        let mut wrong = 0;
        for k in 0..n {
            match found.get(&k) {
                None => {
                    missing += 1;
                    eprintln!("key {k} missing (reported addr {})", addrs[k as usize]);
                }
                Some(v) if v.len() > 1 => {
                    dups += 1;
                    eprintln!(
                        "key {k} duplicated at {:?} (reported {})",
                        v, addrs[k as usize]
                    );
                }
                Some(v) => {
                    if v[0] != addrs[k as usize] {
                        wrong += 1;
                        eprintln!("key {k} at {} but reported {}", v[0], addrs[k as usize]);
                    }
                }
            }
            if missing + dups + wrong > 8 {
                break;
            }
        }
        assert!(
            missing == 0 && dups == 0 && wrong == 0,
            "missing={missing} dups={dups} wrong={wrong}"
        );
    }
}
