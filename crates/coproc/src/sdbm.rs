//! The sdbm hash function.
//!
//! Paper §4.4.1: "we use Sdbm hash function for its minimal use of hardware
//! resources; it requires neither a huge lookup table nor an expensive
//! operation like modulo" — bucket selection therefore masks with a
//! power-of-two bucket count.

/// Hash `bytes` with the sdbm recurrence `h = c + (h << 6) + (h << 16) - h`.
pub fn sdbm_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0;
    for &c in bytes {
        h = (c as u64)
            .wrapping_add(h << 6)
            .wrapping_add(h << 16)
            .wrapping_sub(h);
    }
    h
}

/// Map a hash value to a bucket index for a power-of-two table.
pub fn bucket_of(hash: u64, buckets: u64) -> u64 {
    debug_assert!(buckets.is_power_of_two());
    hash & (buckets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let a = sdbm_hash(b"hello");
        assert_eq!(a, sdbm_hash(b"hello"));
        assert_ne!(a, sdbm_hash(b"hellp"));
    }

    #[test]
    fn matches_reference_values() {
        // Reference: sdbm("a") = 97 (first iteration: h = c).
        assert_eq!(sdbm_hash(b"a"), 97);
        // Two-byte check computed by the recurrence by hand:
        // h1 = 97; h2 = 98 + (97<<6) + (97<<16) - 97 = 98 + 6208 + 6357952 - 97.
        assert_eq!(sdbm_hash(b"ab"), 98 + (97u64 << 6) + (97u64 << 16) - 97);
    }

    #[test]
    fn bucket_masks_low_bits() {
        assert_eq!(bucket_of(0x1234, 16), 4);
        assert_eq!(bucket_of(u64::MAX, 1024), 1023);
    }

    #[test]
    fn integer_keys_distribute_over_buckets() {
        // Big-endian u64 keys 0..4096 should touch many buckets of a 256-way
        // table — guards against degenerate clustering for our key encoding.
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..4096 {
            seen.insert(bucket_of(sdbm_hash(&k.to_be_bytes()), 256));
        }
        assert!(seen.len() > 200, "only {} buckets hit", seen.len());
    }
}
