//! Timestamp-ordering visibility checks (paper §4.7).
//!
//! BionicDB uses a variant of basic single-version timestamp concurrency
//! control. The checks run inside the index pipelines, right after a stage
//! has fetched the matching record's header:
//!
//! * read permission is granted on a tuple with a lower write time;
//! * write permission is granted on a tuple with lower read *and* write
//!   times;
//! * any access to an uncommitted (dirty) tuple is blindly rejected and
//!   makes the transaction abort;
//! * a granted read immediately advances the tuple's read timestamp;
//! * UPDATE only marks the dirty bit — the softcore performs the in-place
//!   write later, after backing up the UNDO image;
//! * REMOVE marks dirty + tombstone.

use bionicdb_fpga::Dram;
use bionicdb_softcore::request::DbOp;
use bionicdb_softcore::{DbResult, DbStatus};

use crate::layout::{read_header, RecordHeader, FLAG_DIRTY, FLAG_TOMBSTONE};

/// Outcome of a visibility check: the result to report and the new flag /
/// timestamp state to write back to the record header (posted writes issued
/// by the pipeline stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visibility {
    /// Result for the CP register.
    pub result: DbResult,
    /// New read timestamp, if it must be advanced.
    pub new_read_ts: Option<u64>,
    /// New flags word, if it must be updated.
    pub new_flags: Option<u64>,
}

impl Visibility {
    fn reject(status: DbStatus) -> Visibility {
        Visibility {
            result: DbResult::Err(status),
            new_read_ts: None,
            new_flags: None,
        }
    }
}

/// Check read permission for a SEARCH (or a scan step) at `ts` against the
/// record at `addr` with header `hdr`.
pub fn check_read(hdr: &RecordHeader, ts: u64, addr: u64) -> Visibility {
    if hdr.is_dirty() {
        return Visibility::reject(DbStatus::Dirty);
    }
    if hdr.is_tombstone() {
        return Visibility::reject(DbStatus::NotFound);
    }
    if hdr.write_ts > ts {
        // A future writer already committed this version: reading it would
        // violate timestamp order.
        return Visibility::reject(DbStatus::CcConflict);
    }
    Visibility {
        result: DbResult::Ok(addr),
        new_read_ts: (hdr.read_ts < ts).then_some(ts),
        new_flags: None,
    }
}

/// Check write permission for an UPDATE at `ts`; on success the dirty bit is
/// set (the in-place write happens later on the softcore).
pub fn check_update(hdr: &RecordHeader, ts: u64, addr: u64) -> Visibility {
    check_write(hdr, ts, addr, FLAG_DIRTY)
}

/// Check write permission for a REMOVE at `ts`; on success dirty and
/// tombstone bits are both set.
pub fn check_remove(hdr: &RecordHeader, ts: u64, addr: u64) -> Visibility {
    check_write(hdr, ts, addr, FLAG_DIRTY | FLAG_TOMBSTONE)
}

fn check_write(hdr: &RecordHeader, ts: u64, addr: u64, set_flags: u64) -> Visibility {
    if hdr.is_dirty() {
        return Visibility::reject(DbStatus::Dirty);
    }
    if hdr.is_tombstone() {
        return Visibility::reject(DbStatus::NotFound);
    }
    if hdr.write_ts > ts || hdr.read_ts > ts {
        return Visibility::reject(DbStatus::CcConflict);
    }
    Visibility {
        result: DbResult::Ok(addr),
        new_read_ts: None,
        new_flags: Some(hdr.flags | set_flags),
    }
}

/// Atomically run the visibility check for `op` against the record header
/// at `hdr_addr` and apply the resulting metadata updates (read-timestamp
/// advance, dirty/tombstone marks).
///
/// The terminal pipeline stage performs this as a single header
/// read-modify-write transaction on the hardware; the simulator mirrors
/// that by reading the *current* functional header and applying the update
/// in the same cycle. (A delayed, posted flag update would open a window
/// in which two writers both pass the check — a lost update the real
/// datapath cannot exhibit.) `result_addr` is the record address returned
/// on success.
pub fn check_and_apply(
    dram: &mut Dram,
    hdr_addr: u64,
    op: DbOp,
    ts: u64,
    result_addr: u64,
) -> DbResult {
    let hdr = read_header(dram, hdr_addr);
    let vis = match op {
        DbOp::Search => check_read(&hdr, ts, result_addr),
        DbOp::Update => check_update(&hdr, ts, result_addr),
        DbOp::Remove => check_remove(&hdr, ts, result_addr),
        DbOp::Insert | DbOp::Scan => unreachable!("{op:?} has no point visibility check"),
    };
    if let Some(new_ts) = vis.new_read_ts {
        dram.host_write_u64(hdr_addr + 8, new_ts);
    }
    if let Some(flags) = vis.new_flags {
        dram.host_write_u64(hdr_addr + 16, flags);
    }
    vis.result
}

/// Atomically advance a record's read timestamp for a scan step.
pub fn apply_scan_read(dram: &mut Dram, hdr_addr: u64, ts: u64) {
    let hdr = read_header(dram, hdr_addr);
    if hdr.read_ts < ts {
        dram.host_write_u64(hdr_addr + 8, ts);
    }
}

/// Visibility of a committed record to a *scan* at `ts`: dirty records and
/// records written after the scan began are skipped without aborting
/// (paper §4.4.2: towers inserted after the scan started "are ignored by
/// timestamp-based visibility check").
pub fn scan_visible(hdr: &RecordHeader, ts: u64) -> bool {
    !hdr.is_dirty() && !hdr.is_tombstone() && hdr.write_ts <= ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_softcore::IndexKey;

    fn hdr(write_ts: u64, read_ts: u64, flags: u64) -> RecordHeader {
        RecordHeader {
            write_ts,
            read_ts,
            flags,
            key: IndexKey::from_u64(1),
        }
    }

    #[test]
    fn read_of_older_version_ok_and_advances_read_ts() {
        let v = check_read(&hdr(5, 3, 0), 10, 0xAA);
        assert_eq!(v.result, DbResult::Ok(0xAA));
        assert_eq!(v.new_read_ts, Some(10));
    }

    #[test]
    fn read_does_not_regress_read_ts() {
        let v = check_read(&hdr(5, 20, 0), 10, 0);
        assert_eq!(v.new_read_ts, None);
        assert!(v.result.is_ok());
    }

    #[test]
    fn read_of_future_write_rejected() {
        let v = check_read(&hdr(99, 0, 0), 10, 0);
        assert_eq!(v.result, DbResult::Err(DbStatus::CcConflict));
    }

    #[test]
    fn dirty_access_blindly_rejected() {
        assert_eq!(
            check_read(&hdr(1, 1, FLAG_DIRTY), 10, 0).result,
            DbResult::Err(DbStatus::Dirty)
        );
        assert_eq!(
            check_update(&hdr(1, 1, FLAG_DIRTY), 10, 0).result,
            DbResult::Err(DbStatus::Dirty)
        );
    }

    #[test]
    fn tombstone_reads_as_not_found() {
        let v = check_read(&hdr(1, 1, FLAG_TOMBSTONE), 10, 0);
        assert_eq!(v.result, DbResult::Err(DbStatus::NotFound));
    }

    #[test]
    fn update_rejected_by_later_reader() {
        let v = check_update(&hdr(1, 50, 0), 10, 0);
        assert_eq!(v.result, DbResult::Err(DbStatus::CcConflict));
    }

    #[test]
    fn update_marks_dirty_only() {
        let v = check_update(&hdr(1, 1, 0), 10, 0xBB);
        assert_eq!(v.result, DbResult::Ok(0xBB));
        assert_eq!(v.new_flags, Some(FLAG_DIRTY));
        assert_eq!(v.new_read_ts, None);
    }

    #[test]
    fn remove_marks_dirty_and_tombstone() {
        let v = check_remove(&hdr(1, 1, 0), 10, 0);
        assert_eq!(v.new_flags, Some(FLAG_DIRTY | FLAG_TOMBSTONE));
    }

    #[test]
    fn scan_visibility_skips_dirty_and_future() {
        assert!(scan_visible(&hdr(5, 0, 0), 10));
        assert!(!scan_visible(&hdr(5, 0, FLAG_DIRTY), 10));
        assert!(!scan_visible(&hdr(5, 0, FLAG_TOMBSTONE), 10));
        assert!(
            !scan_visible(&hdr(50, 0, 0), 10),
            "inserted after scan began"
        );
    }
}
