//! The hardware skiplist pipeline (paper §4.4.2, Figs. 5b and 7).
//!
//! A skiplist is a collection of linked lists at multiple levels; BionicDB
//! maps *exclusive level ranges* onto pipeline stages: the top stage chases
//! pointers at the highest levels and hands the instruction down as it goes
//! out of its range, immediately moving on to the next instruction. The
//! bottom-level stage exclusively owns level 0, which serializes structural
//! changes — this is what makes scans **stall-free**: every tower inserted
//! before a scan is visible on the bottom link by the time the scan reaches
//! it, and towers inserted after the scan started are filtered out by the
//! timestamp visibility check.
//!
//! * Traversal stages (levels ≥ 1): horizontal pointer chasing, drop a
//!   level when the next tower goes out of range.
//! * Bottom stage (level 0): finishes point operations (visibility check),
//!   installs new towers on the recorded insert path, and hands scans to a
//!   dedicated **scanner** module. Multiple scanners can be configured to
//!   spread heavy scan loads (paper §4.4.2; §5.5 shows the single-scanner
//!   bottleneck of Fig. 11c).
//!
//! Insert–insert hazards (paper Fig. 7): every in-flight INSERT locks the
//! *entry point* of its insert path — the predecessor tower at the top
//! level it will modify — in a BRAM lock table keyed by
//! `(table, tower, level)`. Insert traversals check the lock table before
//! switching to the next tower or a lower level and stall on a locked
//! entry; the lock is released by the bottom stage when the insert
//! completes. Searches and scans do not take or check locks (stall-free).
//!
//! Independent of the lock table, the bottom stage *re-validates* the
//! recorded insert path while linking (it is the single serialization
//! point, so the re-walk is race-free). With hazard prevention enabled the
//! re-walk never finds a stale pointer; with it disabled, the re-walk keeps
//! the structure consistent but the paper's fig. 7 anomaly (towers lost
//! from upper levels) is observable through the recorded path statistics.

use bionicdb_fpga::stats::{StageStats, WaveState};
use bionicdb_fpga::{Dram, Fifo, LockTable};
use bionicdb_softcore::request::{DbOp, DbRequest, DbResponse};
use bionicdb_softcore::{DbResult, DbStatus, IndexKey};

use crate::cc;
use crate::layout::{self, RecordHeader, TableState, HEADER_SIZE, TOWER_NEXTS};
use crate::mem::AsyncReader;
use crate::sdbm::sdbm_hash;

/// Upper bound on tower height supported by the datapath.
pub const MAX_SKIP_LEVEL: usize = 32;

/// Deterministic tower height for a key: geometric(1/2) from a mixed hash,
/// capped at `max_level`. Determinism keeps simulations reproducible.
pub fn tower_height(key: &IndexKey, max_level: usize) -> usize {
    // splitmix64 finalizer over the sdbm hash to decorrelate low bits.
    let mut z = sdbm_hash(key.as_bytes()).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ((z.trailing_ones() as usize) + 1).min(max_level)
}

/// An instruction travelling down the skiplist pipeline.
#[derive(Debug, Clone, Copy)]
struct SkipItem {
    req: DbRequest,
    key: IndexKey,
    /// Level currently being traversed.
    level: usize,
    /// Current tower (0 = the head sentinel).
    cur: u64,
    /// Insert: target tower height.
    height: usize,
    /// Insert: predecessor tower per level (0 = head).
    path: [u64; MAX_SKIP_LEVEL],
    /// Insert: the successor observed at each level during traversal.
    path_next: [u64; MAX_SKIP_LEVEL],
    /// Insert: the lock held, if any.
    locked: Option<(u64, u8)>,
}

impl SkipItem {
    fn new(req: DbRequest, key: IndexKey, top_level: usize, height: usize) -> Self {
        SkipItem {
            req,
            key,
            level: top_level,
            cur: 0,
            height,
            path: [0; MAX_SKIP_LEVEL],
            path_next: [0; MAX_SKIP_LEVEL],
            locked: None,
        }
    }
}

/// Address of `tower.next[level]`, with the head sentinel mapped onto the
/// directory array. Shared with the batch engine, whose level-wise walk
/// reads the same pointer cells.
pub(crate) fn next_ptr_addr(table: &TableState, tower: u64, level: usize) -> u64 {
    if tower == 0 {
        table.head_next_addr(level)
    } else {
        tower + TOWER_NEXTS + 8 * level as u64
    }
}

#[derive(Debug)]
enum StepState {
    /// Issue the read of `cur.next[level]`.
    NeedNextPtr,
    /// Waiting for the next pointer.
    WaitNextPtr,
    /// Need to issue the key read of tower `next`.
    NeedKey { next: u64 },
    /// Waiting for tower `next`'s header.
    WaitKey { next: u64 },
    /// Stalled on a lock-table entry; re-check each cycle, then continue
    /// with the recorded continuation.
    Blocked { resume: Resume },
}

#[derive(Debug, Clone, Copy)]
enum Resume {
    /// Step horizontally onto `next`.
    Step { next: u64 },
    /// Drop to the next lower level (after recording path info).
    Drop { next: u64 },
}

/// One traversal stage covering levels `hi ..= lo` (all ≥ 1).
#[derive(Debug)]
struct LevelStage {
    hi: usize,
    lo: usize,
    input: Fifo<SkipItem>,
    reader: AsyncReader<()>,
    op: Option<(SkipItem, StepState)>,
    /// Completed item waiting for downstream FIFO space.
    forwarding: Option<SkipItem>,
    stats: StageStats,
}

/// Statistics for the skiplist pipeline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SkipStats {
    /// Operations completed (all kinds).
    pub completed: u64,
    /// Tuples emitted by scanners.
    pub scanned_tuples: u64,
    /// Cycles any stage spent blocked on the insert lock table.
    pub lock_stalls: u64,
    /// Cycles scans waited for a free scanner (the Fig. 11c bottleneck).
    pub scanner_waits: u64,
    /// Link-time path re-walk steps (0 when hazard prevention is on).
    pub stale_path_fixups: u64,
}

// ---------------------------------------------------------------------------
// Bottom stage
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum BotState {
    NeedNextPtr,
    WaitNextPtr,
    NeedKey {
        next: u64,
    },
    WaitKey {
        next: u64,
    },
    /// Insert: fetch the payload bytes from the transaction block.
    NeedPayload,
    WaitPayload,
    /// Insert: resolve the true (pred, next) for `level` starting at the
    /// recorded path entry (re-validation walk).
    ResolveLevel {
        level: usize,
    },
    WaitResolvePtr {
        level: usize,
    },
    NeedResolveKey {
        level: usize,
        cand: u64,
    },
    WaitResolveKey {
        level: usize,
        cand: u64,
    },
    /// Insert: all levels resolved; write the tower image (retrying on a
    /// busy controller).
    Install,
    /// Insert: splice the predecessors bottom-up, one level per cycle.
    LinkLevel {
        level: usize,
        addr: u64,
    },
    /// Insert: all writes issued; release the lock and write back.
    InsertDone {
        addr: u64,
    },
    /// Scan: waiting for a free scanner.
    ScanHandoff {
        start: u64,
    },
    /// Waiting for space in the output queue.
    Writeback {
        result: DbResult,
    },
}

#[derive(Debug)]
struct BottomOp {
    item: SkipItem,
    state: BotState,
    payload: Vec<u8>,
    /// Resolved successor per level (inserts).
    resolved_next: [u64; MAX_SKIP_LEVEL],
}

#[derive(Debug)]
struct BottomStage {
    input: Fifo<SkipItem>,
    reader: AsyncReader<()>,
    op: Option<BottomOp>,
    stats: StageStats,
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum ScanState {
    NeedHdr,
    WaitHdr,
    WaitPayload { next: u64 },
    Writeback,
}

#[derive(Debug)]
struct ScanOp {
    req: DbRequest,
    tower: u64,
    collected: u32,
    state: ScanState,
}

#[derive(Debug)]
struct Scanner {
    reader: AsyncReader<()>,
    op: Option<ScanOp>,
    stats: StageStats,
}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

/// The skiplist pipeline of one index coprocessor.
#[derive(Debug)]
pub struct SkipPipeline {
    /// Admitted requests waiting for KeyFetch.
    pub input: Fifo<DbRequest>,
    keyfetch: AsyncReader<DbRequest>,
    stages: Vec<LevelStage>,
    bottom: BottomStage,
    scanners: Vec<Scanner>,
    lock: LockTable<(u8, u64, u8)>,
    hazard_prevention: bool,
    max_level: usize,
    /// Completed responses, drained by the coprocessor facade.
    pub out: Fifo<DbResponse>,
    stats: SkipStats,
}

/// Compute the level range `(hi, lo)` of each traversal stage: levels
/// `1 ..= max_level-1` split across `n_stages - 1` stages (the bottom stage
/// owns level 0 exclusively), with upper stages taking the larger shares —
/// "if skiplist towers are substantially sparser at upper levels, upper
/// pipeline stages could be assigned larger ranges" (paper §4.4.2).
fn stage_ranges(max_level: usize, n_stages: usize) -> Vec<(usize, usize)> {
    let traversal_stages = n_stages.saturating_sub(1).max(1);
    let levels = max_level - 1; // levels 1..=max_level-1
    let base = levels / traversal_stages;
    let extra = levels % traversal_stages;
    let mut ranges = Vec::with_capacity(traversal_stages);
    let mut hi = max_level - 1;
    for i in 0..traversal_stages {
        let span = base + usize::from(i < extra);
        if span == 0 {
            continue;
        }
        let lo = hi + 1 - span;
        ranges.push((hi, lo));
        if lo == 1 {
            break;
        }
        hi = lo - 1;
    }
    ranges
}

impl SkipPipeline {
    /// Build the pipeline with `n_stages` total stages (including the
    /// bottom-level stage) and `n_scanners` scanner modules.
    pub fn new(
        dram: &mut Dram,
        fifo_depth: usize,
        slots: usize,
        n_stages: usize,
        n_scanners: usize,
        max_level: usize,
        hazard_prevention: bool,
    ) -> Self {
        assert!((2..=MAX_SKIP_LEVEL).contains(&max_level));
        let ranges = stage_ranges(max_level, n_stages.max(2));
        SkipPipeline {
            input: Fifo::new(fifo_depth.max(32)),
            keyfetch: AsyncReader::new(dram, slots),
            stages: ranges
                .into_iter()
                .map(|(hi, lo)| LevelStage {
                    hi,
                    lo,
                    input: Fifo::new(fifo_depth),
                    reader: AsyncReader::new(dram, 1),
                    op: None,
                    forwarding: None,
                    stats: StageStats::default(),
                })
                .collect(),
            bottom: BottomStage {
                input: Fifo::new(fifo_depth),
                reader: AsyncReader::new(dram, 1),
                op: None,
                stats: StageStats::default(),
            },
            scanners: (0..n_scanners.max(1))
                .map(|_| Scanner {
                    reader: AsyncReader::new(dram, 1),
                    op: None,
                    stats: StageStats::default(),
                })
                .collect(),
            lock: LockTable::new(256),
            hazard_prevention,
            max_level,
            out: Fifo::new(64),
            stats: SkipStats::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SkipStats {
        self.stats
    }

    /// True when no operation is anywhere in the pipeline.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty()
            && self.keyfetch.is_idle()
            && self
                .stages
                .iter()
                .all(|s| s.input.is_empty() && s.op.is_none() && s.forwarding.is_none())
            && self.bottom.input.is_empty()
            && self.bottom.op.is_none()
            && self.scanners.iter().all(|s| s.op.is_none())
            && self.out.is_empty()
    }

    /// Fast-forward support: `Some(now + 1)` when any stage could make
    /// progress, attempt a DRAM issue/write, or mutate a statistic on the
    /// next tick; `None` when every occupied stage is purely waiting on a
    /// DRAM response (bounded by the DRAM `next_event` at machine level).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let stage_busy = |s: &LevelStage| {
            s.forwarding.is_some()
                || match &s.op {
                    // Wait states make progress only when the read is back;
                    // everything else attempts an issue or a lock re-check
                    // (mutating `lock_stalls`) every single cycle.
                    Some((_, StepState::WaitNextPtr | StepState::WaitKey { .. })) => {
                        s.reader.has_ready()
                    }
                    Some(_) => true,
                    None => !s.input.is_empty(),
                }
        };
        let bottom_busy = match &self.bottom.op {
            Some(op) => match op.state {
                BotState::WaitNextPtr
                | BotState::WaitKey { .. }
                | BotState::WaitPayload
                | BotState::WaitResolvePtr { .. }
                | BotState::WaitResolveKey { .. } => self.bottom.reader.has_ready(),
                _ => true,
            },
            None => !self.bottom.input.is_empty(),
        };
        let scanner_busy = |sc: &Scanner| match &sc.op {
            Some(op) => match op.state {
                ScanState::WaitHdr | ScanState::WaitPayload { .. } => sc.reader.has_ready(),
                ScanState::NeedHdr | ScanState::Writeback => true,
            },
            None => false,
        };
        let busy = self.keyfetch.has_ready()
            || (self.keyfetch.can_issue() && !self.input.is_empty())
            || self.stages.iter().any(stage_busy)
            || bottom_busy
            || self.scanners.iter().any(scanner_busy);
        if busy {
            Some(now + 1)
        } else {
            None
        }
    }

    /// Fast-forward support: account for `k` skipped pure-wait cycles. The
    /// per-cycle bookkeeping replicated here is the *idle* counter of every
    /// empty stage (a tick with no op and no input records an idle cycle,
    /// never a stall — stalls mean contention, and a skippable cycle has
    /// none by construction); stages waiting on an in-flight read record
    /// nothing per cycle, and every other configuration reports `now + 1`
    /// from [`Self::next_event`] and is never skipped over.
    pub fn skip(&mut self, k: u64) {
        // An empty span is `Empty` under the unified wave-accounting rule
        // (`StageStats::wave_skip`), the same bucket the batch engine uses.
        for s in &mut self.stages {
            if s.op.is_none() && s.forwarding.is_none() && s.input.is_empty() {
                s.stats.wave_skip(WaveState::Empty, k);
            }
        }
        if self.bottom.op.is_none() && self.bottom.input.is_empty() {
            self.bottom.stats.wave_skip(WaveState::Empty, k);
        }
        for sc in &mut self.scanners {
            if sc.op.is_none() {
                sc.stats.wave_skip(WaveState::Empty, k);
            }
        }
    }

    /// Per-stage utilization counters: one entry per traversal stage
    /// (labelled with its level range), the bottom stage, and each scanner.
    pub fn stage_stats(&self) -> Vec<(String, StageStats)> {
        let mut v = Vec::with_capacity(self.stages.len() + 1 + self.scanners.len());
        for s in &self.stages {
            v.push((format!("skip.levels[{}..={}]", s.lo, s.hi), s.stats));
        }
        v.push(("skip.bottom".to_string(), self.bottom.stats));
        for (i, sc) in self.scanners.iter().enumerate() {
            v.push((format!("skip.scanner[{i}]"), sc.stats));
        }
        v
    }

    /// Advance the pipeline by one cycle.
    pub fn tick(&mut self, now: u64, dram: &mut Dram, tables: &mut [TableState]) {
        self.tick_scanners(now, dram, tables);
        self.tick_bottom(now, dram, tables);
        for i in (0..self.stages.len()).rev() {
            self.tick_stage(i, now, dram, tables);
        }
        self.tick_keyfetch(now, dram, tables);
    }

    fn writeback(
        out: &mut Fifo<DbResponse>,
        stats: &mut SkipStats,
        req: &DbRequest,
        r: DbResult,
    ) -> bool {
        match out.push(DbResponse {
            cp: req.cp,
            value: r.encode(),
        }) {
            Ok(()) => {
                stats.completed += 1;
                true
            }
            Err(_) => false,
        }
    }

    // ---- KeyFetch ----
    fn tick_keyfetch(&mut self, now: u64, dram: &mut Dram, tables: &[TableState]) {
        self.keyfetch.poll(dram);
        if self.stages[0].input.has_space() {
            if let Some((req, data)) = self.keyfetch.pop_ready() {
                let key = IndexKey::from_bytes(&data);
                let height = if req.op == DbOp::Insert {
                    tower_height(&key, self.max_level)
                } else {
                    0
                };
                let item = SkipItem::new(req, key, self.max_level - 1, height);
                self.stages[0].input.push(item).expect("space checked");
            }
        }
        if self.keyfetch.can_issue() {
            if let Some(req) = self.input.peek().copied() {
                let key_len = tables[req.table.0 as usize].meta.key_len as u32;
                if self
                    .keyfetch
                    .issue(now, dram, req.key_addr, key_len, req)
                    .is_ok()
                {
                    self.input.pop();
                }
            }
        }
    }

    /// Is `(table, tower, level)` locked by someone other than `item`?
    fn locked_by_other(&self, item: &SkipItem, tower: u64, level: usize) -> bool {
        if !self.hazard_prevention || item.req.op != DbOp::Insert {
            return false;
        }
        let key = (item.req.table.0, tower, level as u8);
        self.lock.is_locked(&key) && item.locked != Some((tower, level as u8))
    }

    // ---- traversal stages ----
    fn tick_stage(&mut self, idx: usize, now: u64, dram: &mut Dram, tables: &[TableState]) {
        self.stages[idx].reader.poll(dram);

        // Try to push a finished item downstream.
        if let Some(item) = self.stages[idx].forwarding.take() {
            if let Some(item) = self.forward(idx, item) {
                self.stages[idx].forwarding = Some(item);
                return; // still blocked; keep head-of-line stall
            }
        }

        let Some((mut item, state)) = self.stages[idx].op.take() else {
            // Idle: accept a new item. The lock checks (and, when this is
            // the item's top modified level, the acquisition) for a level
            // reached across a stage boundary happen HERE, in the stage
            // that owns the level — acquiring upstream would let the holder
            // get stuck behind a waiter blocked head-of-line in this stage
            // (deadlock). A held lock stalls admission without popping.
            if let Some(peek) = self.stages[idx].input.peek() {
                let level = peek.level.min(self.stages[idx].hi);
                if self.hazard_prevention && peek.req.op == DbOp::Insert {
                    let mut probe = *peek;
                    probe.level = level;
                    if self.locked_by_other(&probe, probe.cur, level) {
                        self.stats.lock_stalls += 1;
                        self.stages[idx].stats.stall();
                        return;
                    }
                    if level + 1 == probe.height && probe.locked.is_none() {
                        let lkey = (probe.req.table.0, probe.cur, level as u8);
                        if !self.lock.try_lock(lkey) {
                            self.stats.lock_stalls += 1;
                            self.stages[idx].stats.stall();
                            return;
                        }
                        let mut item = self.stages[idx].input.pop().expect("peeked");
                        item.level = level;
                        item.locked = Some((item.cur, level as u8));
                        self.stages[idx].op = Some((item, StepState::NeedNextPtr));
                        self.stages[idx].stats.work(1);
                        return;
                    }
                }
                let mut item = self.stages[idx].input.pop().expect("peeked");
                item.level = level;
                self.stages[idx].op = Some((item, StepState::NeedNextPtr));
                self.stages[idx].stats.work(1);
            } else {
                self.stages[idx].stats.idle();
            }
            return;
        };

        let table = &tables[item.req.table.0 as usize];
        let new_state = match state {
            StepState::NeedNextPtr => {
                let addr = next_ptr_addr(table, item.cur, item.level);
                match self.stages[idx].reader.issue(now, dram, addr, 8, ()) {
                    Ok(()) => StepState::WaitNextPtr,
                    Err(()) => StepState::NeedNextPtr,
                }
            }
            StepState::WaitNextPtr => match self.stages[idx].reader.pop_ready() {
                Some((_, data)) => {
                    let next = u64::from_le_bytes(data.as_slice().try_into().expect("8 bytes"));
                    if next == 0 {
                        // +inf: out of range, drop a level.
                        return self.stage_descend(idx, item, 0);
                    }
                    StepState::NeedKey { next }
                }
                None => StepState::WaitNextPtr,
            },
            StepState::NeedKey { next } => {
                match self.stages[idx]
                    .reader
                    .issue(now, dram, next, HEADER_SIZE as u32, ())
                {
                    Ok(()) => StepState::WaitKey { next },
                    Err(()) => StepState::NeedKey { next },
                }
            }
            StepState::WaitKey { next } => match self.stages[idx].reader.pop_ready() {
                Some((_, data)) => {
                    let hdr = RecordHeader::decode(&data);
                    if hdr.key < item.key {
                        // Step horizontally (lock check before switching to
                        // the next tower).
                        if self.locked_by_other(&item, next, item.level) {
                            self.stats.lock_stalls += 1;
                            StepState::Blocked {
                                resume: Resume::Step { next },
                            }
                        } else {
                            item.cur = next;
                            StepState::NeedNextPtr
                        }
                    } else {
                        return self.stage_descend(idx, item, next);
                    }
                }
                None => StepState::WaitKey { next },
            },
            StepState::Blocked { resume } => {
                let (tower, lvl) = match resume {
                    Resume::Step { next } => (next, item.level),
                    Resume::Drop { .. } => (item.cur, item.level),
                };
                if self.locked_by_other(&item, tower, lvl) {
                    self.stats.lock_stalls += 1;
                    StepState::Blocked { resume }
                } else {
                    match resume {
                        Resume::Step { next } => {
                            item.cur = next;
                            StepState::NeedNextPtr
                        }
                        Resume::Drop { next } => {
                            // The blocker installed new towers: redo the
                            // drop (which re-takes the lock checks and, at
                            // the top modified level, the acquisition) and
                            // then re-scan the level for fresh pointers.
                            return self.stage_descend_unlocked(idx, item, next);
                        }
                    }
                }
            }
        };
        self.stages[idx].op = Some((item, new_state));
    }

    /// The next tower at `item.level` is out of range: record insert path
    /// info, then drop a level (possibly forwarding to the next stage).
    fn stage_descend(&mut self, idx: usize, mut item: SkipItem, next: u64) {
        if item.req.op == DbOp::Insert {
            let lvl = item.level;
            if lvl < item.height {
                item.path[lvl] = item.cur;
                item.path_next[lvl] = next;
            }
        }
        self.stage_descend_unlocked(idx, item, next);
    }

    /// Drop `item` one level, staying in this stage or forwarding.
    ///
    /// Lock discipline (paper §4.4.2, Fig. 7b): an INSERT acquires its
    /// entry-point lock `(tower, level)` the moment its traversal *arrives*
    /// at the top level it will modify (level = height − 1), i.e. before
    /// any pointer at that level has been observed — so every follower that
    /// will share the insert path must cross this (tower, level) and block
    /// on the drop/step checks. Acquiring any later (e.g. when leaving the
    /// level) opens a window where a follower slips underneath.
    fn stage_descend_unlocked(&mut self, idx: usize, mut item: SkipItem, _next: u64) {
        debug_assert!(item.level >= 1);
        item.level -= 1;
        let stays = item.level >= self.stages[idx].lo;
        // Lock checks and the entry-point acquisition only for levels this
        // stage owns; a boundary crossing defers them to the downstream
        // stage's admission (see `tick_stage`) so a lock holder can never
        // be queued behind its own waiter.
        if stays && item.req.op == DbOp::Insert && self.hazard_prevention && item.level >= 1 {
            if self.locked_by_other(&item, item.cur, item.level) {
                item.level += 1; // undo; re-check next cycle
                self.stats.lock_stalls += 1;
                self.stages[idx].op = Some((
                    item,
                    StepState::Blocked {
                        resume: Resume::Drop { next: _next },
                    },
                ));
                return;
            }
            // Arriving at the top modified level: take the entry-point lock.
            if item.level + 1 == item.height && item.locked.is_none() {
                let key = (item.req.table.0, item.cur, item.level as u8);
                if !self.lock.try_lock(key) {
                    // Lock table full (never same-key: checked above).
                    item.level += 1;
                    self.stats.lock_stalls += 1;
                    self.stages[idx].op = Some((
                        item,
                        StepState::Blocked {
                            resume: Resume::Drop { next: _next },
                        },
                    ));
                    return;
                }
                item.locked = Some((item.cur, item.level as u8));
            }
        }
        if stays {
            self.stages[idx].op = Some((item, StepState::NeedNextPtr));
        } else if let Some(item) = self.forward(idx, item) {
            self.stages[idx].forwarding = Some(item);
        }
    }

    /// Push a finished item to the next stage / the bottom stage. Returns
    /// the item back when the downstream FIFO is full.
    fn forward(&mut self, idx: usize, item: SkipItem) -> Option<SkipItem> {
        let res = if idx + 1 < self.stages.len() {
            self.stages[idx + 1].input.push(item)
        } else {
            self.bottom.input.push(item)
        };
        res.err()
    }

    // ---- bottom stage ----
    #[allow(clippy::too_many_lines)]
    fn tick_bottom(&mut self, now: u64, dram: &mut Dram, tables: &mut [TableState]) {
        self.bottom.reader.poll(dram);
        let Some(mut op) = self.bottom.op.take() else {
            if let Some(mut item) = self.bottom.input.pop() {
                item.level = 0;
                self.bottom.op = Some(BottomOp {
                    item,
                    state: BotState::NeedNextPtr,
                    payload: Vec::new(),
                    resolved_next: [0; MAX_SKIP_LEVEL],
                });
                self.bottom.stats.work(1);
            } else {
                self.bottom.stats.idle();
            }
            return;
        };

        let table_idx = op.item.req.table.0 as usize;
        op.state = match op.state {
            BotState::NeedNextPtr => {
                let addr = next_ptr_addr(&tables[table_idx], op.item.cur, 0);
                match self.bottom.reader.issue(now, dram, addr, 8, ()) {
                    Ok(()) => BotState::WaitNextPtr,
                    Err(()) => BotState::NeedNextPtr,
                }
            }
            BotState::WaitNextPtr => match self.bottom.reader.pop_ready() {
                Some((_, data)) => {
                    let next = u64::from_le_bytes(data.as_slice().try_into().expect("8 bytes"));
                    if next == 0 {
                        self.bottom_at_position(dram, &mut op, 0, None)
                    } else {
                        BotState::NeedKey { next }
                    }
                }
                None => BotState::WaitNextPtr,
            },
            BotState::NeedKey { next } => {
                match self
                    .bottom
                    .reader
                    .issue(now, dram, next, HEADER_SIZE as u32, ())
                {
                    Ok(()) => BotState::WaitKey { next },
                    Err(()) => BotState::NeedKey { next },
                }
            }
            BotState::WaitKey { next } => match self.bottom.reader.pop_ready() {
                Some((_, data)) => {
                    let hdr = RecordHeader::decode(&data);
                    if hdr.key < op.item.key {
                        if self.locked_by_other(&op.item, next, 0) {
                            // Stall: re-read the tower until the lock clears.
                            self.stats.lock_stalls += 1;
                            BotState::NeedKey { next }
                        } else {
                            op.item.cur = next;
                            BotState::NeedNextPtr
                        }
                    } else {
                        self.bottom_at_position(dram, &mut op, next, Some(hdr))
                    }
                }
                None => BotState::WaitKey { next },
            },
            BotState::NeedPayload => {
                let len = tables[table_idx].meta.payload_len;
                match self
                    .bottom
                    .reader
                    .issue(now, dram, op.item.req.payload_addr, len, ())
                {
                    Ok(()) => BotState::WaitPayload,
                    Err(()) => BotState::NeedPayload,
                }
            }
            BotState::WaitPayload => match self.bottom.reader.pop_ready() {
                Some((_, data)) => {
                    op.payload = data.to_vec();
                    BotState::ResolveLevel { level: 0 }
                }
                None => BotState::WaitPayload,
            },
            BotState::ResolveLevel { level } => {
                if level >= op.item.height {
                    BotState::Install
                } else {
                    let addr = next_ptr_addr(&tables[table_idx], op.item.path[level], level);
                    match self.bottom.reader.issue(now, dram, addr, 8, ()) {
                        Ok(()) => BotState::WaitResolvePtr { level },
                        Err(()) => BotState::ResolveLevel { level },
                    }
                }
            }
            BotState::WaitResolvePtr { level } => match self.bottom.reader.pop_ready() {
                Some((_, data)) => {
                    let cand = u64::from_le_bytes(data.as_slice().try_into().expect("8 bytes"));
                    if cand == 0 || cand == op.item.path_next[level] {
                        // Path still valid (or end of list).
                        op.resolved_next[level] = cand;
                        BotState::ResolveLevel { level: level + 1 }
                    } else {
                        // A concurrent insert extended this level; walk.
                        self.stats.stale_path_fixups += 1;
                        // Env-gated diagnostic for lock-discipline work:
                        // BIONICDB_DEBUG_FIXUPS=1 prints each stale path.
                        if std::env::var_os("BIONICDB_DEBUG_FIXUPS").is_some() {
                            eprintln!(
                                "fixup: key={} h={} level={} pred={:#x} expected_next={:#x} found={:#x}",
                                op.item.key.to_u64(), op.item.height, level,
                                op.item.path[level], op.item.path_next[level], cand
                            );
                        }
                        BotState::NeedResolveKey { level, cand }
                    }
                }
                None => BotState::WaitResolvePtr { level },
            },
            BotState::NeedResolveKey { level, cand } => {
                match self
                    .bottom
                    .reader
                    .issue(now, dram, cand, HEADER_SIZE as u32, ())
                {
                    Ok(()) => BotState::WaitResolveKey { level, cand },
                    Err(()) => BotState::NeedResolveKey { level, cand },
                }
            }
            BotState::WaitResolveKey { level, cand } => match self.bottom.reader.pop_ready() {
                Some((_, data)) => {
                    let hdr = RecordHeader::decode(&data);
                    if hdr.key < op.item.key {
                        // Advance the pred and re-read its next pointer.
                        op.item.path[level] = cand;
                        BotState::ResolveLevel { level }
                    } else {
                        op.resolved_next[level] = cand;
                        BotState::ResolveLevel { level: level + 1 }
                    }
                }
                None => BotState::WaitResolveKey { level, cand },
            },
            BotState::Install => {
                // Compose and write the tower image; predecessors are only
                // spliced after the image has issued (a concurrent probe
                // following a spliced pointer must never see an unwritten
                // tower).
                let table = &mut tables[table_idx];
                let h = op.item.height;
                let addr = table.alloc_tower(h);
                let mut image = Vec::with_capacity(table.tower_size(h) as usize);
                let hdr = RecordHeader {
                    write_ts: op.item.req.ts,
                    read_ts: 0,
                    flags: layout::FLAG_DIRTY,
                    key: op.item.key,
                };
                image.extend_from_slice(&hdr.encode());
                image.extend_from_slice(&(h as u64).to_le_bytes());
                for l in 0..h {
                    image.extend_from_slice(&op.resolved_next[l].to_le_bytes());
                }
                image.extend_from_slice(&op.payload);
                if self.bottom.reader.write(now, dram, addr, image) {
                    BotState::LinkLevel { level: 0, addr }
                } else {
                    // Controller busy: retry next cycle. The allocation is
                    // redone then; bump allocation makes the skipped bytes
                    // garbage, exactly like an aborted insert on hardware.
                    BotState::Install
                }
            }
            BotState::LinkLevel { level, addr } => {
                if level >= op.item.height {
                    BotState::InsertDone { addr }
                } else {
                    let table = &tables[table_idx];
                    let pred_slot = next_ptr_addr(table, op.item.path[level], level);
                    if self
                        .bottom
                        .reader
                        .write(now, dram, pred_slot, addr.to_le_bytes().to_vec())
                    {
                        BotState::LinkLevel {
                            level: level + 1,
                            addr,
                        }
                    } else {
                        BotState::LinkLevel { level, addr }
                    }
                }
            }
            BotState::InsertDone { addr } => {
                if Self::writeback(
                    &mut self.out,
                    &mut self.stats,
                    &op.item.req,
                    DbResult::Ok(addr),
                ) {
                    if let Some((tower, lvl)) = op.item.locked.take() {
                        self.lock.unlock(&(op.item.req.table.0, tower, lvl));
                    }
                    self.bottom.op = None;
                    return;
                }
                BotState::InsertDone { addr }
            }
            BotState::ScanHandoff { start } => {
                if let Some(sc) = self.scanners.iter_mut().find(|s| s.op.is_none()) {
                    sc.op = Some(ScanOp {
                        req: op.item.req,
                        tower: start,
                        collected: 0,
                        state: ScanState::NeedHdr,
                    });
                    self.bottom.op = None;
                    return;
                }
                self.stats.scanner_waits += 1;
                BotState::ScanHandoff { start }
            }
            BotState::Writeback { result } => {
                if Self::writeback(&mut self.out, &mut self.stats, &op.item.req, result) {
                    if let Some((tower, lvl)) = op.item.locked.take() {
                        self.lock.unlock(&(op.item.req.table.0, tower, lvl));
                    }
                    self.bottom.op = None;
                    return;
                }
                BotState::Writeback { result }
            }
        };
        self.bottom.op = Some(op);
    }

    /// The bottom traversal reached the final position: `cand` is the first
    /// tower with key ≥ the search key (0 = none). Decide what to do per op.
    /// Point-op visibility checks run as an atomic header read-modify-write
    /// (see [`cc::check_and_apply`]); the pipelined header copy is trusted
    /// only for the immutable key.
    fn bottom_at_position(
        &mut self,
        dram: &mut Dram,
        op: &mut BottomOp,
        cand: u64,
        hdr: Option<RecordHeader>,
    ) -> BotState {
        match op.item.req.op {
            DbOp::Insert => {
                op.item.path[0] = op.item.cur;
                op.item.path_next[0] = cand;
                BotState::NeedPayload
            }
            DbOp::Scan => BotState::ScanHandoff { start: cand },
            DbOp::Search | DbOp::Update | DbOp::Remove => {
                let result = match hdr {
                    Some(h) if h.key == op.item.key => {
                        cc::check_and_apply(dram, cand, op.item.req.op, op.item.req.ts, cand)
                    }
                    _ => DbResult::Err(DbStatus::NotFound),
                };
                BotState::Writeback { result }
            }
        }
    }

    // ---- scanners ----
    fn tick_scanners(&mut self, now: u64, dram: &mut Dram, tables: &[TableState]) {
        for sc in &mut self.scanners {
            sc.reader.poll(dram);
            let Some(mut op) = sc.op.take() else {
                sc.stats.idle();
                continue;
            };
            let table = &tables[op.req.table.0 as usize];
            op.state = match op.state {
                ScanState::NeedHdr => {
                    if op.tower == 0 || op.collected >= op.scan_target() {
                        ScanState::Writeback
                    } else {
                        // Header + height + next[0] in one 80-byte burst.
                        match sc
                            .reader
                            .issue(now, dram, op.tower, (TOWER_NEXTS + 8) as u32, ())
                        {
                            Ok(()) => ScanState::WaitHdr,
                            Err(()) => ScanState::NeedHdr,
                        }
                    }
                }
                ScanState::WaitHdr => match sc.reader.pop_ready() {
                    Some((_, data)) => {
                        let data = data.as_slice();
                        let hdr = RecordHeader::decode(data);
                        let height =
                            u64::from_le_bytes(data[64..72].try_into().expect("height")) as usize;
                        let next0 = u64::from_le_bytes(data[72..80].try_into().expect("next0"));
                        if cc::scan_visible(&hdr, op.req.ts) {
                            // Fetch the payload for the result set.
                            let paddr = op.tower + TableState::tower_payload_off(height);
                            match sc
                                .reader
                                .issue(now, dram, paddr, table.meta.payload_len, ())
                            {
                                Ok(()) => {
                                    // Advance the read timestamp like a read
                                    // (atomic header RMW, same as point ops).
                                    cc::apply_scan_read(dram, op.tower, op.req.ts);
                                    ScanState::WaitPayload { next: next0 }
                                }
                                Err(()) => ScanState::NeedHdr, // retry whole step
                            }
                        } else {
                            op.tower = next0;
                            ScanState::NeedHdr
                        }
                    }
                    None => ScanState::WaitHdr,
                },
                ScanState::WaitPayload { next } => match sc.reader.pop_ready() {
                    Some((_, data)) => {
                        let dst =
                            op.req.out_addr + op.collected as u64 * table.meta.payload_len as u64;
                        sc.reader.write(now, dram, dst, data.to_vec());
                        op.collected += 1;
                        self.stats.scanned_tuples += 1;
                        op.tower = next;
                        ScanState::NeedHdr
                    }
                    None => ScanState::WaitPayload { next },
                },
                ScanState::Writeback => {
                    if Self::writeback(
                        &mut self.out,
                        &mut self.stats,
                        &op.req,
                        DbResult::Ok(op.collected as u64),
                    ) {
                        sc.stats.work(1);
                        continue; // op dropped: scanner free
                    }
                    ScanState::Writeback
                }
            };
            sc.op = Some(op);
        }
    }
}

impl ScanOp {
    fn scan_target(&self) -> u32 {
        self.req.scan_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tower_height_is_geometric_and_capped() {
        let mut counts = [0usize; MAX_SKIP_LEVEL + 1];
        for k in 0..100_000u64 {
            let h = tower_height(&IndexKey::from_u64(k), 20);
            assert!((1..=20).contains(&h));
            counts[h] += 1;
        }
        // Roughly half the towers have height 1, a quarter height 2, ...
        assert!(
            (45_000..55_000).contains(&counts[1]),
            "h=1 count {}",
            counts[1]
        );
        assert!(
            (20_000..30_000).contains(&counts[2]),
            "h=2 count {}",
            counts[2]
        );
    }

    #[test]
    fn stage_ranges_cover_levels_exactly_once() {
        for (max_level, stages) in [(20, 8), (20, 4), (16, 8), (4, 2), (32, 12)] {
            let ranges = stage_ranges(max_level, stages);
            let mut covered = vec![false; max_level];
            for (hi, lo) in &ranges {
                assert!(hi >= lo && *lo >= 1, "range ({hi},{lo})");
                for (l, c) in covered.iter_mut().enumerate().take(*hi + 1).skip(*lo) {
                    assert!(!*c, "level {l} covered twice");
                    *c = true;
                }
            }
            assert!(
                covered[1..].iter().all(|&c| c),
                "levels 1..{max_level} covered: {ranges:?}"
            );
            // Upper stages take the larger shares.
            let spans: Vec<usize> = ranges.iter().map(|(h, l)| h - l + 1).collect();
            assert!(spans.windows(2).all(|w| w[0] >= w[1]), "spans {spans:?}");
        }
    }
}
