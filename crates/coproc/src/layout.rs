//! DRAM layout of tuples, skiplist towers and index directories.
//!
//! Both index structures share a 64-byte *record header* that carries the
//! concurrency-control metadata (paper §4.7: "each tuple is associated with
//! latest read and write timestamps", a dirty bit and a tombstone bit) and
//! the inline key:
//!
//! ```text
//! record header (64 B):
//!   +0   write_ts  (u64)
//!   +8   read_ts   (u64)
//!   +16  flags     (u64)  bit0 = dirty, bit1 = tombstone
//!   +24  key_len   (u64)
//!   +32  key bytes (32 B, zero padded)
//! ```
//!
//! A **hash tuple** is `[ next(8) | header(64) | payload ]` — `next` chains
//! hash-conflict tuples (paper Fig. 5a). A **skiplist tower** is
//! `[ header(64) | height(8) | next[height]·8 | payload ]` (paper Fig. 5b:
//! "a skiplist node (tower) includes a tuple and an array of pointers to the
//! next towers at different levels").

use bionicdb_fpga::{Dram, Region};
use bionicdb_softcore::catalogue::TableMeta;
use bionicdb_softcore::IndexKey;

/// Size of the shared record header.
pub const HEADER_SIZE: u64 = 64;
/// Offset of the `next` pointer in a hash tuple.
pub const TUPLE_NEXT: u64 = 0;
/// Offset of the record header inside a hash tuple.
pub const TUPLE_HEADER: u64 = 8;
/// Offset of the payload inside a hash tuple.
pub const TUPLE_PAYLOAD: u64 = TUPLE_HEADER + HEADER_SIZE;

/// Offset of the tower height word.
pub const TOWER_HEIGHT: u64 = HEADER_SIZE;
/// Offset of the tower next-pointer array.
pub const TOWER_NEXTS: u64 = HEADER_SIZE + 8;

/// Flag bit: tuple written by an uncommitted transaction.
pub const FLAG_DIRTY: u64 = 1;
/// Flag bit: tuple logically deleted.
pub const FLAG_TOMBSTONE: u64 = 2;

/// A decoded record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Commit timestamp of the latest writer.
    pub write_ts: u64,
    /// Begin timestamp of the latest reader.
    pub read_ts: u64,
    /// Dirty/tombstone flags.
    pub flags: u64,
    /// The record's key.
    pub key: IndexKey,
}

impl RecordHeader {
    /// Encode into the 64-byte DRAM representation.
    pub fn encode(&self) -> [u8; HEADER_SIZE as usize] {
        let mut b = [0u8; HEADER_SIZE as usize];
        b[0..8].copy_from_slice(&self.write_ts.to_le_bytes());
        b[8..16].copy_from_slice(&self.read_ts.to_le_bytes());
        b[16..24].copy_from_slice(&self.flags.to_le_bytes());
        b[24..32].copy_from_slice(&(self.key.len() as u64).to_le_bytes());
        b[32..32 + self.key.len()].copy_from_slice(self.key.as_bytes());
        b
    }

    /// Decode from the 64-byte DRAM representation.
    pub fn decode(b: &[u8]) -> RecordHeader {
        assert!(b.len() >= HEADER_SIZE as usize, "short record header");
        let rd = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        let key_len = rd(24) as usize;
        assert!(
            (1..=32).contains(&key_len),
            "corrupt record header: key_len {key_len} (pointer chased into garbage?)"
        );
        RecordHeader {
            write_ts: rd(0),
            read_ts: rd(8),
            flags: rd(16),
            key: IndexKey::from_bytes(&b[32..32 + key_len]),
        }
    }

    /// True if the dirty bit is set.
    pub fn is_dirty(&self) -> bool {
        self.flags & FLAG_DIRTY != 0
    }

    /// True if the tombstone bit is set.
    pub fn is_tombstone(&self) -> bool {
        self.flags & FLAG_TOMBSTONE != 0
    }
}

/// Per-partition physical state of one table: where its directory lives and
/// the heap region new records are allocated from.
#[derive(Debug)]
pub struct TableState {
    /// Logical schema (copied from the catalogue at build time).
    pub meta: TableMeta,
    /// Hash tables: base of the bucket-head array. Skiplists: base of the
    /// head tower's next-pointer array (`max_level` u64 slots).
    pub dir_addr: u64,
    /// Bump-allocation region for tuples / towers.
    pub heap: Region,
    /// Skiplists: maximum tower height.
    pub max_level: usize,
}

impl TableState {
    /// Bytes needed for one hash tuple of this table.
    pub fn tuple_size(&self) -> u64 {
        TUPLE_PAYLOAD + self.meta.payload_len as u64
    }

    /// Bytes needed for one tower of height `h`.
    pub fn tower_size(&self, h: usize) -> u64 {
        TOWER_NEXTS + 8 * h as u64 + self.meta.payload_len as u64
    }

    /// Address of the bucket head slot for `bucket`.
    pub fn bucket_addr(&self, bucket: u64) -> u64 {
        debug_assert!(bucket < self.meta.hash_buckets);
        self.dir_addr + 8 * bucket
    }

    /// Address of the head tower's next pointer at `level`.
    pub fn head_next_addr(&self, level: usize) -> u64 {
        debug_assert!(level < self.max_level);
        self.dir_addr + 8 * level as u64
    }

    /// Allocate a hash tuple; returns its address.
    pub fn alloc_tuple(&mut self) -> u64 {
        self.heap.alloc(self.tuple_size(), 8)
    }

    /// Allocate a tower of height `h`; returns its address.
    pub fn alloc_tower(&mut self, h: usize) -> u64 {
        self.heap.alloc(self.tower_size(h), 8)
    }

    /// Offset of the payload within a tower of height `h`.
    pub fn tower_payload_off(h: usize) -> u64 {
        TOWER_NEXTS + 8 * h as u64
    }
}

// ----- host-level (untimed) accessors, used for loading and verification -----

/// Read and decode the record header of the record at `hdr_addr`.
pub fn read_header(dram: &Dram, hdr_addr: u64) -> RecordHeader {
    RecordHeader::decode(&dram.host_read(hdr_addr, HEADER_SIZE as usize))
}

/// Write a record header at `hdr_addr`.
pub fn write_header(dram: &mut Dram, hdr_addr: u64, h: &RecordHeader) {
    dram.host_write(hdr_addr, &h.encode());
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_fpga::FpgaConfig;
    use bionicdb_softcore::catalogue::TableMeta;

    #[test]
    fn header_roundtrip() {
        let h = RecordHeader {
            write_ts: 7,
            read_ts: 9,
            flags: FLAG_DIRTY | FLAG_TOMBSTONE,
            key: IndexKey::from_bytes(b"composite-key"),
        };
        let enc = h.encode();
        let dec = RecordHeader::decode(&enc);
        assert_eq!(dec, h);
        assert!(dec.is_dirty() && dec.is_tombstone());
    }

    #[test]
    fn header_via_dram() {
        let mut dram = Dram::new(&FpgaConfig::default(), 1 << 20);
        let h = RecordHeader {
            write_ts: 1,
            read_ts: 2,
            flags: 0,
            key: IndexKey::from_u64(77),
        };
        write_header(&mut dram, 512, &h);
        assert_eq!(read_header(&dram, 512), h);
    }

    #[test]
    fn sizes_and_offsets() {
        let st = TableState {
            meta: TableMeta::hash("t", 8, 100, 16),
            dir_addr: 0x1000,
            heap: Region::new(0x10000, 1 << 16),
            max_level: 20,
        };
        assert_eq!(st.tuple_size(), 8 + 64 + 100);
        assert_eq!(st.tower_size(3), 64 + 8 + 24 + 100);
        assert_eq!(st.bucket_addr(3), 0x1000 + 24);
        assert_eq!(TableState::tower_payload_off(2), 64 + 8 + 16);
    }

    #[test]
    fn alloc_bumps_heap() {
        let mut st = TableState {
            meta: TableMeta::hash("t", 8, 32, 16),
            dir_addr: 0,
            heap: Region::new(0x2000, 1 << 12),
            max_level: 20,
        };
        let a = st.alloc_tuple();
        let b = st.alloc_tuple();
        assert!(b >= a + st.tuple_size());
    }

    #[test]
    #[should_panic(expected = "corrupt record header")]
    fn decoding_garbage_panics() {
        let _ = RecordHeader::decode(&[0u8; 64]); // key_len 0 is invalid
    }
}
