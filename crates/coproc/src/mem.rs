//! Memory-access machinery for pipeline stages.
//!
//! Each pipeline stage owns a DRAM port and a small set of *operation slots*
//! (the hardware analogue: per-stage outstanding-request registers). A stage
//! issues a read tagged with a slot id, keeps the operation's context in the
//! slot, and is "awakened on source data arrival" (paper §4.4) when the
//! response returns. Posted writes share the port but carry a sentinel tag
//! and their acknowledgements are discarded.

use bionicdb_fpga::{Dram, MemData, MemKind, MemRequest, PortId, Tag};

/// Tag marking posted writes, whose acknowledgements are dropped.
const WRITE_TAG: Tag = Tag(u64::MAX);

/// A stage-local asynchronous reader with `N` operation slots carrying a
/// context of type `T`.
#[derive(Debug)]
pub struct AsyncReader<T> {
    port: PortId,
    slots: Vec<Option<T>>,
    ready: std::collections::VecDeque<(T, MemData)>,
}

impl<T> AsyncReader<T> {
    /// Create a reader with `slots` outstanding-request slots, registering a
    /// port on `dram`.
    pub fn new(dram: &mut Dram, slots: usize) -> Self {
        assert!(slots > 0);
        AsyncReader {
            port: dram.register_port(),
            slots: (0..slots).map(|_| None).collect(),
            ready: std::collections::VecDeque::new(),
        }
    }

    /// True when a free slot exists.
    pub fn can_issue(&self) -> bool {
        self.slots.iter().any(Option::is_none)
    }

    /// Number of operations currently in flight or completed-but-unclaimed.
    pub fn in_use(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count() + self.ready.len()
    }

    /// Issue a read of `len` bytes at `addr` with context `ctx`. Returns the
    /// context back if no slot is free or the DRAM controller is busy this
    /// cycle (the caller retries next cycle).
    pub fn issue(
        &mut self,
        now: u64,
        dram: &mut Dram,
        addr: u64,
        len: u32,
        ctx: T,
    ) -> Result<(), T> {
        let Some(slot) = self.slots.iter().position(Option::is_none) else {
            return Err(ctx);
        };
        let req = MemRequest {
            addr,
            kind: MemKind::Read { len },
            tag: Tag(slot as u64),
        };
        match dram.issue(now, self.port, req) {
            Ok(()) => {
                self.slots[slot] = Some(ctx);
                Ok(())
            }
            Err(_) => Err(ctx),
        }
    }

    /// Issue a posted write (fire and forget). Returns `false` if the
    /// controller is busy this cycle.
    pub fn write(&mut self, now: u64, dram: &mut Dram, addr: u64, data: Vec<u8>) -> bool {
        dram.issue(
            now,
            self.port,
            MemRequest {
                addr,
                kind: MemKind::Write { data },
                tag: WRITE_TAG,
            },
        )
        .is_ok()
    }

    /// Drain delivered responses: completed reads move (with their context)
    /// into the ready queue; write acknowledgements are dropped.
    pub fn poll(&mut self, dram: &mut Dram) {
        while let Some(resp) = dram.pop_response(self.port) {
            if resp.tag == WRITE_TAG {
                continue;
            }
            let slot = resp.tag.0 as usize;
            let ctx = self.slots[slot].take().expect("response for empty slot");
            self.ready.push_back((ctx, resp.data));
        }
    }

    /// Pop the oldest completed read.
    pub fn pop_ready(&mut self) -> Option<(T, MemData)> {
        self.ready.pop_front()
    }

    /// Peek the oldest completed read without consuming it.
    pub fn peek_ready(&self) -> Option<&(T, MemData)> {
        self.ready.front()
    }

    /// True when a completed read is waiting to be popped (fast-forward
    /// support: a stage with a ready response can make progress next cycle).
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// True when no reads are in flight and nothing is waiting to be popped.
    pub fn is_idle(&self) -> bool {
        self.ready.is_empty() && self.slots.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_fpga::FpgaConfig;

    #[test]
    fn read_context_travels_with_response() {
        let cfg = FpgaConfig::default();
        let mut dram = Dram::new(&cfg, 1 << 20);
        let mut r: AsyncReader<&str> = AsyncReader::new(&mut dram, 2);
        dram.host_write_u64(8, 0x55);
        r.issue(0, &mut dram, 8, 8, "ctx-a").unwrap();
        assert!(r.can_issue());
        dram.tick(cfg.dram_latency);
        r.poll(&mut dram);
        let (ctx, data) = r.pop_ready().unwrap();
        assert_eq!(ctx, "ctx-a");
        assert_eq!(u64::from_le_bytes(data.as_slice().try_into().unwrap()), 0x55);
        assert!(r.is_idle());
    }

    #[test]
    fn slots_bound_outstanding_reads() {
        let cfg = FpgaConfig::default();
        let mut dram = Dram::new(&cfg, 1 << 20);
        let mut r: AsyncReader<u32> = AsyncReader::new(&mut dram, 1);
        r.issue(0, &mut dram, 0, 8, 1).unwrap();
        assert_eq!(r.issue(1, &mut dram, 64, 8, 2), Err(2));
        dram.tick(cfg.dram_latency);
        r.poll(&mut dram);
        r.pop_ready().unwrap();
        assert!(r.issue(cfg.dram_latency + 1, &mut dram, 64, 8, 2).is_ok());
    }

    #[test]
    fn write_acks_are_discarded() {
        let cfg = FpgaConfig::default();
        let mut dram = Dram::new(&cfg, 1 << 20);
        let mut r: AsyncReader<()> = AsyncReader::new(&mut dram, 1);
        assert!(r.write(0, &mut dram, 128, vec![1, 2, 3]));
        dram.tick(cfg.dram_latency);
        r.poll(&mut dram);
        assert!(r.pop_ready().is_none());
        assert_eq!(dram.host_read(128, 3), vec![1, 2, 3]);
    }
}
