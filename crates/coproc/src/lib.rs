//! The BionicDB index coprocessor (paper §4.4).
//!
//! The coprocessor processes DB instructions from the local softcore
//! (foreground requests) and from remote workers via the on-chip channels
//! (background requests). The key acceleration technique is **index
//! pipelining**: each index algorithm is decomposed into sub-functions, each
//! implemented as a pipeline stage (a finite-state machine awakened on data
//! arrival from off-chip DRAM); multiple outstanding DB instructions overlap
//! between neighbouring stages, which raises memory-level parallelism far
//! beyond what dependent pointer chasing allows a CPU.
//!
//! Two indexes are provided:
//!
//! * [`hash`] — point access (INSERT/SEARCH/UPDATE/REMOVE) through the
//!   KeyFetch → Hash → {Install | HeadFetch → Compare → Traverse} pipeline
//!   of paper Fig. 5a, with the insert-after-insert / search-after-insert
//!   hazards of Fig. 6 prevented by a BRAM lock table keyed on bucket.
//! * [`skiplist`] — range scans (plus point ops) through level-partitioned
//!   traversal stages and dedicated scanner modules (paper Fig. 5b), with
//!   insert-insert hazards (Fig. 7) prevented by entry-point locks and
//!   stall-free scans serialized at the bottom stage.
//!
//! When [`CoprocConfig::batch_mode`] is enabled, read-set probes tagged
//! with a batch group divert to [`batch`] — a level-wise batched traversal
//! engine that walks up to `batch_width` probes together, issuing each
//! index level's fetches as one deduplicated wave of outstanding DRAM
//! reads (DESIGN.md §16). The default (`Off`) is bit-inert.
//!
//! Concurrency control (basic single-version timestamp ordering, paper
//! §4.7) is evaluated *inside* the pipelines: the visibility check runs
//! where the tuple header has just been fetched ([`cc`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod cc;
pub mod coproc;
pub mod hash;
pub mod layout;
pub mod mem;
pub mod sdbm;
pub mod skiplist;

pub use batch::{BatchEngine, BatchStats};
pub use coproc::{CoprocConfig, CoprocStats, IndexCoproc};
pub use layout::{RecordHeader, TableState};
pub use sdbm::sdbm_hash;
