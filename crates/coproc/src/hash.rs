//! The hardware hash-index pipeline (paper §4.4.1, Figs. 5a and 6).
//!
//! Sub-functions of hash index operations map onto pipeline stages:
//!
//! ```text
//!            ┌────────── INSERT ─────────→ Install
//! KeyFetch → Hash ─┤
//!            └─ SEARCH/UPDATE/REMOVE ────→ HeadFetch → Compare → Traverse*
//! ```
//!
//! * **KeyFetch** reads the search key from the transaction block.
//! * **Hash** computes the sdbm hash, consults the BRAM lock table (hazard
//!   prevention), and loads the hash-table entry (bucket head).
//! * **Install** (inserts) fetches the payload from the transaction block,
//!   allocates a tuple, writes it with `next = old head`, updates the bucket
//!   head and releases the bucket lock.
//! * **HeadFetch** returns NotFound on an empty bucket, otherwise reads the
//!   first tuple of the chain.
//! * **Compare** matches the key and runs the visibility check; mismatches
//!   fall through to a **Traverse** stage that follows the conflict chain
//!   (decoupled so a long chain does not block operations that terminate at
//!   Compare; multiple Traverse stages can be populated).
//!
//! Hazards: in-flight operations that passed Hash are tracked in a lock
//! table keyed by `(table, bucket)`. Only INSERTs take the lock, but *every*
//! operation blocks at Hash while its bucket is locked — this prevents both
//! the insert-after-insert lost update and the search-after-insert
//! inconsistent read of paper Fig. 6. Setting
//! [`crate::coproc::CoprocConfig::hazard_prevention`] to `false` disables
//! the lock table; the crate tests use that to *demonstrate* the anomaly.

use bionicdb_fpga::stats::{StageStats, WaveState};
use bionicdb_fpga::{Dram, Fifo, LockTable, MemData};
use bionicdb_softcore::request::{DbOp, DbRequest, DbResponse};
use bionicdb_softcore::{DbResult, DbStatus, IndexKey};

use crate::cc;
use crate::layout::{self, RecordHeader, TableState, HEADER_SIZE, TUPLE_HEADER, TUPLE_PAYLOAD};
use crate::mem::AsyncReader;
use crate::sdbm::{bucket_of, sdbm_hash};

/// A request annotated with its fetched key.
#[derive(Debug, Clone, Copy)]
struct Keyed {
    req: DbRequest,
    key: IndexKey,
}

/// A request heading for Install / HeadFetch with its bucket resolved.
#[derive(Debug, Clone, Copy)]
struct Bucketed {
    req: DbRequest,
    key: IndexKey,
    bucket_addr: u64,
}

/// A probe walking the tuple chain.
#[derive(Debug, Clone, Copy)]
struct Probe {
    req: DbRequest,
    key: IndexKey,
    tuple_addr: u64,
}

/// An insert in its final write sequence. The tuple image must land before
/// the bucket head is redirected (a concurrent probe following the head
/// must never see an unwritten tuple), and the bucket lock is held until
/// both writes have issued.
#[derive(Debug)]
struct InstallFinish {
    b: Bucketed,
    addr: u64,
    image: Option<Vec<u8>>,
    head_written: bool,
}

/// One Traverse stage: follows a hash-conflict chain, one operation at a
/// time (the stage "could involve multiple memory stalls", paper §4.4.1).
#[derive(Debug)]
struct Traverse {
    reader: AsyncReader<Probe>,
    /// Next chain read to issue (set on hand-off and on each hop).
    pending: Option<Probe>,
    /// A decoded response that could not finish (full output queue); the
    /// visibility decision is replayed next cycle.
    parked: Option<(Probe, MemData)>,
    busy: bool,
    stats: StageStats,
}

/// Per-pipeline statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HashStats {
    /// Per-stage utilization: keyfetch, hash, install, headfetch, compare.
    pub keyfetch: StageStats,
    /// Hash stage.
    pub hash: StageStats,
    /// Install stage.
    pub install: StageStats,
    /// HeadFetch stage.
    pub headfetch: StageStats,
    /// Compare stage.
    pub compare: StageStats,
    /// Cycles the Hash stage spent blocked on the lock table.
    pub lock_stalls: u64,
    /// Peak simultaneous bucket locks held.
    pub lock_peak: u64,
    /// Operations completed.
    pub completed: u64,
    /// Operations resolved in a Traverse stage (chain walk needed).
    pub traversed: u64,
}

/// The hash-index pipeline of one index coprocessor.
#[derive(Debug)]
pub struct HashPipeline {
    /// Admitted requests waiting for KeyFetch.
    pub input: Fifo<DbRequest>,
    keyfetch: AsyncReader<DbRequest>,
    hash_in: Fifo<Keyed>,
    /// Hash stage: item stalled on the lock table, if any (head-of-line).
    hash_stalled: Option<Keyed>,
    hash_rd: AsyncReader<Bucketed>,
    install_in: Fifo<(Bucketed, u64)>,
    install_rd: AsyncReader<(Bucketed, u64)>,
    /// An insert whose payload arrived and whose ordered DRAM writes
    /// (tuple image, then bucket head) are still being issued.
    install_fin: Option<InstallFinish>,
    headfetch_in: Fifo<(Bucketed, u64)>,
    headfetch_rd: AsyncReader<Probe>,
    compare_in: Fifo<(Probe, MemData)>,
    traverse: Vec<Traverse>,
    lock: LockTable<(u8, u64)>,
    hazard_prevention: bool,
    /// Completed responses, drained by the coprocessor facade.
    pub out: Fifo<DbResponse>,
    stats: HashStats,
}

impl HashPipeline {
    /// Build the pipeline, registering DRAM ports for every stage.
    pub fn new(
        dram: &mut Dram,
        fifo_depth: usize,
        slots: usize,
        traverse_stages: usize,
        hazard_prevention: bool,
    ) -> Self {
        HashPipeline {
            input: Fifo::new(fifo_depth.max(32)),
            keyfetch: AsyncReader::new(dram, slots),
            hash_in: Fifo::new(fifo_depth),
            hash_stalled: None,
            hash_rd: AsyncReader::new(dram, slots),
            install_in: Fifo::new(fifo_depth),
            install_rd: AsyncReader::new(dram, slots),
            install_fin: None,
            headfetch_in: Fifo::new(fifo_depth),
            headfetch_rd: AsyncReader::new(dram, slots),
            compare_in: Fifo::new(fifo_depth),
            traverse: (0..traverse_stages.max(1))
                .map(|_| Traverse {
                    reader: AsyncReader::new(dram, 1),
                    pending: None,
                    parked: None,
                    busy: false,
                    stats: StageStats::default(),
                })
                .collect(),
            lock: LockTable::new(256),
            hazard_prevention,
            out: Fifo::new(64),
            stats: HashStats::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HashStats {
        let mut s = self.stats;
        s.lock_peak = self.lock.peak() as u64;
        s
    }

    /// Per-Traverse-stage utilization counters (one entry per chain-walk
    /// stage; the fixed stages are in [`HashStats`]).
    pub fn traverse_stats(&self) -> Vec<StageStats> {
        self.traverse.iter().map(|t| t.stats).collect()
    }

    /// True when hazard prevention currently holds the bucket lock for
    /// `(table, bucket)`. Consulted by the batch engine so a batched head
    /// wave honours the same head-of-line rule as the Hash stage: no probe
    /// reads a bucket head while an in-flight insert owns that bucket.
    pub(crate) fn bucket_locked(&self, table: u8, bucket: u64) -> bool {
        self.hazard_prevention && self.lock.is_locked(&(table, bucket))
    }

    /// True when no operation is anywhere in the pipeline.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty()
            && self.keyfetch.is_idle()
            && self.hash_in.is_empty()
            && self.hash_stalled.is_none()
            && self.hash_rd.is_idle()
            && self.install_in.is_empty()
            && self.install_rd.is_idle()
            && self.install_fin.is_none()
            && self.headfetch_in.is_empty()
            && self.headfetch_rd.is_idle()
            && self.compare_in.is_empty()
            && self.traverse.iter().all(|t| !t.busy)
            && self.out.is_empty()
    }

    /// Fast-forward support: `Some(now + 1)` when any stage could make
    /// progress, attempt a DRAM issue, or mutate a statistic on the next
    /// tick; `None` when every occupied stage is purely waiting on a DRAM
    /// response (bounded by the DRAM's own `next_event` at machine level).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let busy = self.keyfetch.has_ready()
            || (self.keyfetch.can_issue() && !self.input.is_empty())
            || self.hash_rd.has_ready()
            || self.hash_stalled.is_some()
            || !self.hash_in.is_empty()
            || self.install_fin.is_some()
            || self.install_rd.has_ready()
            || (self.install_rd.can_issue() && !self.install_in.is_empty())
            || self.headfetch_rd.has_ready()
            || self
                .headfetch_in
                .peek()
                .is_some_and(|&(_, head)| head == 0 || self.headfetch_rd.can_issue())
            || !self.compare_in.is_empty()
            || self.traverse.iter().any(|t| {
                t.pending.is_some() || t.parked.is_some() || t.reader.has_ready()
            });
        if busy {
            Some(now + 1)
        } else {
            None
        }
    }

    /// Fast-forward support: account for `k` skipped pure-wait cycles. The
    /// only per-cycle bookkeeping a pure-wait tick performs here is the
    /// stall counter of a busy Traverse stage whose chain read is still in
    /// flight (every other stalled configuration reports `now + 1` from
    /// [`Self::next_event`] and is never skipped).
    pub fn skip(&mut self, k: u64) {
        for t in &mut self.traverse {
            if t.busy && t.pending.is_none() && t.parked.is_none() && !t.reader.has_ready() {
                // A held-but-unprogressable span is `Waiting` under the
                // unified wave-accounting rule (`StageStats::wave_skip`).
                t.stats.wave_skip(WaveState::Waiting, k);
            }
        }
    }

    /// Advance every stage by one cycle. Stages tick downstream-first so a
    /// value leaving a stage frees its slot within the same cycle.
    pub fn tick(&mut self, now: u64, dram: &mut Dram, tables: &mut [TableState]) {
        self.tick_traverse(now, dram);
        self.tick_compare(now, dram);
        self.tick_headfetch(now, dram);
        self.tick_install(now, dram, tables);
        self.tick_hash(now, dram, tables);
        self.tick_keyfetch(now, dram, tables);
    }

    fn writeback(
        out: &mut Fifo<DbResponse>,
        stats: &mut HashStats,
        req: &DbRequest,
        r: DbResult,
    ) -> bool {
        match out.push(DbResponse {
            cp: req.cp,
            value: r.encode(),
        }) {
            Ok(()) => {
                stats.completed += 1;
                true
            }
            Err(_) => false,
        }
    }

    // ---- KeyFetch ----
    fn tick_keyfetch(&mut self, now: u64, dram: &mut Dram, tables: &[TableState]) {
        self.keyfetch.poll(dram);
        // Forward one completed key per cycle.
        if self.hash_in.has_space() {
            if let Some((req, data)) = self.keyfetch.pop_ready() {
                let key = IndexKey::from_bytes(&data);
                self.hash_in
                    .push(Keyed { req, key })
                    .expect("hash_in space checked");
                self.stats.keyfetch.work(1);
            }
        }
        // Admit one new request per cycle.
        if self.keyfetch.can_issue() {
            if let Some(req) = self.input.peek().copied() {
                let key_len = tables[req.table.0 as usize].meta.key_len as u32;
                if self
                    .keyfetch
                    .issue(now, dram, req.key_addr, key_len, req)
                    .is_ok()
                {
                    self.input.pop();
                }
            }
        }
    }

    // ---- Hash ----
    fn tick_hash(&mut self, now: u64, dram: &mut Dram, tables: &[TableState]) {
        self.hash_rd.poll(dram);
        // Route one completed bucket-head read.
        if let Some((b, _)) = self.hash_rd.peek_ready() {
            let is_insert = b.req.op == DbOp::Insert;
            let dest_has_space = if is_insert {
                self.install_in.has_space()
            } else {
                self.headfetch_in.has_space()
            };
            if dest_has_space {
                let (b, data) = self.hash_rd.pop_ready().expect("peeked");
                let head = u64::from_le_bytes(data.as_slice().try_into().expect("8 bytes"));
                if is_insert {
                    self.install_in.push((b, head)).expect("space checked");
                } else {
                    self.headfetch_in.push((b, head)).expect("space checked");
                }
                self.stats.hash.work(1);
            }
        }
        // Process one incoming keyed request (head-of-line blocking on the
        // lock table, paper Fig. 6b).
        let item = self.hash_stalled.take().or_else(|| self.hash_in.pop());
        if let Some(item) = item {
            let table = &tables[item.req.table.0 as usize];
            let h = sdbm_hash(item.key.as_bytes());
            let bucket = bucket_of(h, table.meta.hash_buckets);
            let lock_key = (item.req.table.0, bucket);
            if self.hazard_prevention && self.lock.is_locked(&lock_key) {
                self.stats.lock_stalls += 1;
                self.stats.hash.stall();
                self.hash_stalled = Some(item);
                return;
            }
            if !self.hash_rd.can_issue() {
                self.stats.hash.stall();
                self.hash_stalled = Some(item);
                return;
            }
            if self.hazard_prevention
                && item.req.op == DbOp::Insert
                && !self.lock.try_lock(lock_key)
            {
                self.stats.lock_stalls += 1;
                self.stats.hash.stall();
                self.hash_stalled = Some(item);
                return;
            }
            let bucket_addr = table.bucket_addr(bucket);
            let b = Bucketed {
                req: item.req,
                key: item.key,
                bucket_addr,
            };
            if self.hash_rd.issue(now, dram, bucket_addr, 8, b).is_err() {
                // DRAM controller busy: undo the lock and retry next cycle.
                if self.hazard_prevention && item.req.op == DbOp::Insert {
                    self.lock.unlock(&lock_key);
                }
                self.stats.hash.stall();
                self.hash_stalled = Some(item);
            }
        }
    }

    // ---- Install (INSERT path) ----
    fn tick_install(&mut self, now: u64, dram: &mut Dram, tables: &mut [TableState]) {
        self.install_rd.poll(dram);
        // Drive the in-progress write sequence, if any.
        if let Some(fin) = &mut self.install_fin {
            if let Some(image) = fin.image.take() {
                if !self.install_rd.write(now, dram, fin.addr, image.clone()) {
                    fin.image = Some(image);
                    self.stats.install.stall();
                    return;
                }
            }
            if !fin.head_written {
                let data = fin.addr.to_le_bytes().to_vec();
                if !self.install_rd.write(now, dram, fin.b.bucket_addr, data) {
                    self.stats.install.stall();
                    return;
                }
                fin.head_written = true;
            }
            if !self.out.has_space() {
                self.stats.install.stall();
                return;
            }
            let fin = self.install_fin.take().expect("checked");
            if self.hazard_prevention {
                let table = &tables[fin.b.req.table.0 as usize];
                let h = sdbm_hash(fin.b.key.as_bytes());
                self.lock
                    .unlock(&(fin.b.req.table.0, bucket_of(h, table.meta.hash_buckets)));
            }
            let ok = Self::writeback(
                &mut self.out,
                &mut self.stats,
                &fin.b.req,
                DbResult::Ok(fin.addr),
            );
            debug_assert!(ok, "out space checked");
            self.stats.install.work(1);
        }
        // Promote one insert whose payload has arrived into the write
        // sequence.
        if self.install_fin.is_none() {
            if let Some(((b, head), payload)) = self.install_rd.pop_ready() {
                let table = &mut tables[b.req.table.0 as usize];
                let addr = table.alloc_tuple();
                let mut image = Vec::with_capacity(table.tuple_size() as usize);
                image.extend_from_slice(&head.to_le_bytes()); // next = old head
                let hdr = RecordHeader {
                    write_ts: b.req.ts,
                    read_ts: 0,
                    flags: layout::FLAG_DIRTY,
                    key: b.key,
                };
                image.extend_from_slice(&hdr.encode());
                image.extend_from_slice(&payload);
                self.install_fin = Some(InstallFinish {
                    b,
                    addr,
                    image: Some(image),
                    head_written: false,
                });
            }
        }
        // Start fetching one payload.
        if self.install_rd.can_issue() {
            if let Some(&(b, _head)) = self.install_in.peek() {
                let len = tables[b.req.table.0 as usize].meta.payload_len;
                let item = self.install_in.pop().expect("peeked");
                if self
                    .install_rd
                    .issue(now, dram, b.req.payload_addr, len, item)
                    .is_err()
                {
                    self.install_in.push(item).expect("just popped");
                    self.stats.install.stall();
                }
            }
        }
    }

    // ---- HeadFetch ----
    fn tick_headfetch(&mut self, now: u64, dram: &mut Dram) {
        self.headfetch_rd.poll(dram);
        if self.compare_in.has_space() {
            if let Some((p, data)) = self.headfetch_rd.pop_ready() {
                self.compare_in.push((p, data)).expect("space checked");
                self.stats.headfetch.work(1);
            }
        }
        if let Some(&(b, head)) = self.headfetch_in.peek() {
            if head == 0 {
                // Empty bucket: NotFound straight from HeadFetch.
                if Self::writeback(
                    &mut self.out,
                    &mut self.stats,
                    &b.req,
                    DbResult::Err(DbStatus::NotFound),
                ) {
                    self.headfetch_in.pop();
                    self.stats.headfetch.work(1);
                } else {
                    self.stats.headfetch.stall();
                }
            } else if self.headfetch_rd.can_issue() {
                let probe = Probe {
                    req: b.req,
                    key: b.key,
                    tuple_addr: head,
                };
                if self
                    .headfetch_rd
                    .issue(now, dram, head, (TUPLE_HEADER + HEADER_SIZE) as u32, probe)
                    .is_ok()
                {
                    self.headfetch_in.pop();
                } else {
                    self.stats.headfetch.stall();
                }
            }
        }
    }

    // ---- Compare ----
    fn tick_compare(&mut self, _now: u64, dram: &mut Dram) {
        let Some((p, data)) = self.compare_in.peek() else {
            return;
        };
        let p = *p;
        let data = data.as_slice();
        let next = u64::from_le_bytes(data[0..8].try_into().expect("next ptr"));
        let hdr = RecordHeader::decode(&data[TUPLE_HEADER as usize..]);
        if hdr.key == p.key {
            if !self.out.has_space() {
                self.stats.compare.stall();
                return;
            }
            self.compare_in.pop();
            self.finish_probe(dram, &p, &hdr, p.tuple_addr);
            self.stats.compare.work(1);
        } else if next == 0 {
            if Self::writeback(
                &mut self.out,
                &mut self.stats,
                &p.req,
                DbResult::Err(DbStatus::NotFound),
            ) {
                self.compare_in.pop();
                self.stats.compare.work(1);
            } else {
                self.stats.compare.stall();
            }
        } else {
            // Hand off to a free Traverse stage.
            if let Some(t) = self.traverse.iter_mut().find(|t| !t.busy) {
                self.compare_in.pop();
                let probe = Probe {
                    req: p.req,
                    key: p.key,
                    tuple_addr: next,
                };
                t.pending = Some(probe);
                t.busy = true;
                self.stats.compare.work(1);
                self.stats.traversed += 1;
            } else {
                self.stats.compare.stall();
            }
        }
    }

    // ---- Traverse ----
    fn tick_traverse(&mut self, now: u64, dram: &mut Dram) {
        for ti in 0..self.traverse.len() {
            self.traverse[ti].reader.poll(dram);
            if !self.traverse[ti].busy {
                continue;
            }
            if let Some(probe) = self.traverse[ti].pending.take() {
                // Issue the read of the next chain tuple.
                let t = &mut self.traverse[ti];
                if t.reader
                    .issue(
                        now,
                        dram,
                        probe.tuple_addr,
                        (TUPLE_HEADER + HEADER_SIZE) as u32,
                        probe,
                    )
                    .is_err()
                {
                    t.pending = Some(probe);
                    t.stats.stall();
                }
                continue;
            }
            let item = self.traverse[ti]
                .parked
                .take()
                .or_else(|| self.traverse[ti].reader.pop_ready());
            let Some((p, data)) = item else {
                self.traverse[ti].stats.stall();
                continue;
            };
            let next = u64::from_le_bytes(data.as_slice()[0..8].try_into().expect("next ptr"));
            let hdr = RecordHeader::decode(&data.as_slice()[TUPLE_HEADER as usize..]);
            if hdr.key == p.key {
                if !self.out.has_space() {
                    self.traverse[ti].parked = Some((p, data));
                    self.traverse[ti].stats.stall();
                    continue;
                }
                self.finish_probe(dram, &p, &hdr, p.tuple_addr);
                self.traverse[ti].busy = false;
                self.traverse[ti].stats.work(1);
            } else if next == 0 {
                if Self::writeback(
                    &mut self.out,
                    &mut self.stats,
                    &p.req,
                    DbResult::Err(DbStatus::NotFound),
                ) {
                    self.traverse[ti].busy = false;
                    self.traverse[ti].stats.work(1);
                } else {
                    self.traverse[ti].parked = Some((p, data));
                    self.traverse[ti].stats.stall();
                }
            } else {
                self.traverse[ti].pending = Some(Probe {
                    req: p.req,
                    key: p.key,
                    tuple_addr: next,
                });
                self.traverse[ti].stats.work(1);
            }
        }
    }

    /// Run the visibility check as an atomic header read-modify-write (the
    /// terminal stage holds the header line for the check + update; see
    /// [`cc::check_and_apply`]). The pipelined header copy (`hdr`) is only
    /// trusted for the immutable key; the CC metadata is re-read.
    fn finish_probe(&mut self, dram: &mut Dram, p: &Probe, hdr: &RecordHeader, addr: u64) {
        debug_assert_eq!(hdr.key, p.key);
        let result = cc::check_and_apply(dram, addr + TUPLE_HEADER, p.req.op, p.req.ts, addr);
        let ok = Self::writeback(&mut self.out, &mut self.stats, &p.req, result);
        debug_assert!(ok, "caller checked out space");
        let _ = TUPLE_PAYLOAD;
    }
}

#[cfg(test)]
mod tests {
    // The hash pipeline is exercised end-to-end through the IndexCoproc
    // facade in `coproc.rs` tests and the crate-level integration tests.
}
