//! Batched level-wise index traversal (DESIGN.md §16, ROADMAP item 5a).
//!
//! The per-probe pipelines hide DRAM latency by interleaving independent
//! in-flight transactions, so the memory-level parallelism (MLP) they
//! expose is capped by how many concurrent index operations the softcores
//! supply. The batch engine restructures read-set probes (SEARCH / UPDATE
//! / REMOVE) the way the FPGA B+-tree batch-search work does: up to
//! `batch_width` probes that share a [`batch group`](DbRequest::batch_group)
//! travel the index *together*, and every level of the walk issues the
//! whole batch's fetches as one wave of outstanding DRAM reads — sorted
//! and deduplicated by node address, so hot upper levels (the skiplist
//! head tower, shared bucket heads) are fetched once per batch instead of
//! once per probe. MLP becomes `batch_width × controllers` instead of
//! "number of in-flight transactions".
//!
//! Level-wise contract: no probe descends to level `N+1` (hash: chain hop
//! `h+1`) until every probe of the batch has resolved its level-`N`
//! fetches. Within a level a probe may take several same-level steps
//! (skiplist forward steps along one level are level-`N` fetches).
//!
//! The equivalence contract when batching is on is **results, not
//! cycles**: a batched probe returns exactly the hit/miss, record address
//! and CC verdict its per-probe traversal would have returned (proptested
//! in this module's tests), but the cycle in which it completes — and
//! therefore neighbouring timestamps — may differ. With
//! [`BatchMode::Off`](bionicdb_softcore::BatchMode::Off) (the default) the
//! engine is never constructed, no DRAM port is registered, and no request
//! carries a batch group: the machine is bit-identical to a build without
//! this module.

use std::collections::VecDeque;

use bionicdb_fpga::stats::{StageStats, WaveState};
use bionicdb_fpga::{Dram, MemData};
use bionicdb_softcore::request::{DbRequest, DbResponse};
use bionicdb_softcore::{DbResult, DbStatus, IndexKey, IndexKind};

use crate::cc;
use crate::hash::HashPipeline;
use crate::layout::{RecordHeader, TableState, HEADER_SIZE, TUPLE_HEADER};
use crate::mem::AsyncReader;
use crate::sdbm::{bucket_of, sdbm_hash};
use crate::skiplist::next_ptr_addr;

/// Cycles a partially filled batch waits for more probes of its group
/// before launching anyway. Keeps a trickle of tagged probes from waiting
/// forever on an unreachable width target (the launch rule below fires on
/// width, on a group boundary, or on this age — whichever comes first).
const FLUSH_AGE: u64 = 16;

/// Counters of one batch engine, surfaced by the bench bins.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches launched.
    pub batches: u64,
    /// Probes resolved through the engine.
    pub probes: u64,
    /// Wave barriers crossed (index levels / chain hops traversed
    /// batch-wide, including the key-fetch wave).
    pub waves: u64,
    /// DRAM reads issued.
    pub reads: u64,
    /// Reads saved by per-wave address dedup (probes that piggybacked on a
    /// wave-mate's fetch of the same node).
    pub dedup_saved: u64,
    /// Cycles the head wave stalled on a locked hash bucket.
    pub lock_stalls: u64,
    /// Batches launched by the age flush rather than a full width or a
    /// group boundary.
    pub flush_launches: u64,
}

/// Per-probe traversal state. `Need*` wants a read issued, `Wait*` has one
/// outstanding, `Staged*`/`LevelDone` hold resolved probes at the wave
/// barrier until the whole batch may advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    /// Needs the key bytes read from the transaction block.
    NeedKey,
    WaitKey,
    /// Key resolved; waiting for the key-fetch barrier.
    KeyDone,
    /// Hash: needs the bucket-head read.
    NeedHead,
    WaitHead,
    /// Hash: needs the `[next | header]` read of this chain node.
    NeedNode(u64),
    WaitNode(u64),
    /// Hash: resolved this hop; next node staged behind the hop barrier.
    StagedNode(u64),
    /// Skiplist: needs the `cur.next[level]` pointer read.
    NeedPtr,
    WaitPtr,
    /// Skiplist: needs the candidate tower's header read.
    NeedHdr(u64),
    WaitHdr(u64),
    /// Skiplist: finished the current level; waits to descend.
    LevelDone,
    Done,
}

/// One probe of an active batch.
#[derive(Debug)]
struct Probe {
    req: DbRequest,
    /// Valid once past [`PState::WaitKey`].
    key: IndexKey,
    /// Hash only: bucket index, computed when the key resolves.
    bucket: u64,
    /// Skiplist only: current tower (0 = head sentinel).
    cur: u64,
    state: PState,
    result: Option<DbResult>,
}

/// A batch in flight.
#[derive(Debug)]
struct Batch {
    probes: Vec<Probe>,
    /// Skiplist: the level currently traversed batch-wide.
    level: usize,
    /// True once the key-fetch wave completed and the walk started.
    walking: bool,
}

/// The level-wise batched probe engine for one index kind. Constructed
/// only when [`CoprocConfig::batch_mode`](crate::CoprocConfig::batch_mode)
/// is not `Off` — construction registers a DRAM port, which a bit-inert
/// default must not do.
#[derive(Debug)]
pub struct BatchEngine {
    kind: IndexKind,
    width: usize,
    /// Diverted requests waiting to be grouped into a batch.
    pending: VecDeque<DbRequest>,
    /// Cycle at which `pending` last became non-empty (age flush).
    pending_since: u64,
    active: Option<Batch>,
    /// One read per distinct node address per wave; the context fans the
    /// response out to every probe that wanted that node.
    reader: AsyncReader<Vec<u32>>,
    /// Completed responses, drained by the coprocessor facade.
    out: VecDeque<DbResponse>,
    stats: BatchStats,
    stage: StageStats,
}

impl BatchEngine {
    /// Build an engine with `width` probe slots, registering one DRAM port.
    pub fn new(dram: &mut Dram, kind: IndexKind, width: usize) -> Self {
        let width = width.clamp(1, 64);
        BatchEngine {
            kind,
            width,
            pending: VecDeque::new(),
            pending_since: 0,
            active: None,
            reader: AsyncReader::new(dram, width),
            out: VecDeque::new(),
            stats: BatchStats::default(),
            stage: StageStats::default(),
        }
    }

    /// Accept a diverted probe into the pending queue. Returns `false`
    /// when the queue is full (the coprocessor head-of-line blocks, exactly
    /// like a full pipeline input).
    pub fn offer(&mut self, req: DbRequest, now: u64) -> bool {
        if self.pending.len() >= self.width * 2 {
            return false;
        }
        if self.pending.is_empty() {
            self.pending_since = now;
        }
        self.pending.push_back(req);
        true
    }

    /// Drain one completed response.
    pub fn pop_out(&mut self) -> Option<DbResponse> {
        self.out.pop_front()
    }

    /// True when nothing is pending, active, or waiting to be drained.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active.is_none() && self.out.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Utilization of the engine as one wave-holding stage.
    pub fn stage_stats(&self) -> StageStats {
        self.stage
    }

    /// Fast-forward support: conservative — any held work re-ticks every
    /// cycle (wave barriers and the age flush are cycle-granular), so only
    /// a fully idle engine is skippable.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.is_idle() {
            None
        } else {
            Some(now + 1)
        }
    }

    /// Account `k` skipped cycles (only ever called while idle, because
    /// [`Self::next_event`] pins every non-idle cycle).
    pub fn skip(&mut self, k: u64) {
        if self.is_idle() {
            self.stage.wave_skip(WaveState::Empty, k);
        }
    }

    /// Advance the engine one cycle: resolve responses, launch a batch,
    /// cross wave barriers, issue this cycle's wave of deduplicated reads,
    /// and retire a finished batch. `hash` carries the bucket-lock view for
    /// hash-kind engines (`None` for skiplist).
    pub fn tick(
        &mut self,
        now: u64,
        dram: &mut Dram,
        tables: &[TableState],
        hash: Option<&HashPipeline>,
    ) {
        self.reader.poll(dram);
        let mut progressed = false;

        // Resolve completed reads; fan each response out to every probe
        // that piggybacked on the fetch, in probe-index (= admission)
        // order so CC side effects are deterministic.
        while let Some((idxs, data)) = self.reader.pop_ready() {
            progressed = true;
            for idx in idxs {
                self.resolve(idx as usize, &data, dram, tables);
            }
        }

        progressed |= self.try_launch(now);
        progressed |= self.advance_barriers(tables);
        progressed |= self.issue_wave(now, dram, tables, hash);
        let retired = self.retire();
        progressed |= retired > 0;

        let held = self.active.is_some() || !self.pending.is_empty();
        let state = if progressed {
            WaveState::Progressing
        } else if held {
            WaveState::Waiting
        } else {
            WaveState::Empty
        };
        self.stage.wave_tick(state, retired);
    }

    /// Launch a batch when the head group reaches full width, is closed by
    /// a different group queued behind it, or has aged past the flush
    /// deadline.
    fn try_launch(&mut self, now: u64) -> bool {
        if self.active.is_some() || self.pending.is_empty() {
            return false;
        }
        let group = self.pending[0].batch_group;
        let prefix = self
            .pending
            .iter()
            .take_while(|r| r.batch_group == group)
            .count();
        let closed = prefix < self.pending.len();
        let aged = now >= self.pending_since.saturating_add(FLUSH_AGE);
        if prefix < self.width && !closed && !aged {
            return false;
        }
        if aged && prefix < self.width && !closed {
            self.stats.flush_launches += 1;
        }
        let n = prefix.min(self.width);
        let probes = (0..n)
            .map(|_| Probe {
                req: self.pending.pop_front().expect("counted prefix"),
                key: IndexKey::from_u64(0),
                bucket: 0,
                cur: 0,
                state: PState::NeedKey,
                result: None,
            })
            .collect();
        self.pending_since = now;
        self.active = Some(Batch {
            probes,
            level: 0,
            walking: false,
        });
        self.stats.batches += 1;
        true
    }

    /// Cross wave barriers: start the walk once every key resolved; promote
    /// staged hash hops / descend a skiplist level once no probe of the
    /// current wave is still fetching.
    fn advance_barriers(&mut self, tables: &[TableState]) -> bool {
        let Some(b) = &mut self.active else {
            return false;
        };
        let mut progressed = false;
        if !b.walking {
            let keys_done = b
                .probes
                .iter()
                .all(|p| !matches!(p.state, PState::NeedKey | PState::WaitKey));
            if !keys_done {
                return false;
            }
            b.walking = true;
            progressed = true;
            self.stats.waves += 1;
            match self.kind {
                IndexKind::Hash => {
                    for p in &mut b.probes {
                        if p.state != PState::Done {
                            p.state = PState::NeedHead;
                        }
                    }
                }
                IndexKind::Skiplist => {
                    b.level = b
                        .probes
                        .iter()
                        .filter(|p| p.state != PState::Done)
                        .map(|p| tables[p.req.table.0 as usize].max_level)
                        .max()
                        .unwrap_or(1)
                        - 1;
                    Self::enter_level(b, tables);
                }
            }
        }
        match self.kind {
            IndexKind::Hash => {
                let hop_open = b.probes.iter().any(|p| {
                    matches!(
                        p.state,
                        PState::NeedHead
                            | PState::WaitHead
                            | PState::NeedNode(_)
                            | PState::WaitNode(_)
                    )
                });
                if !hop_open && b.probes.iter().any(|p| matches!(p.state, PState::StagedNode(_)))
                {
                    for p in &mut b.probes {
                        if let PState::StagedNode(a) = p.state {
                            p.state = PState::NeedNode(a);
                        }
                    }
                    self.stats.waves += 1;
                    progressed = true;
                }
            }
            IndexKind::Skiplist => {
                let level_open = b.probes.iter().any(|p| {
                    matches!(
                        p.state,
                        PState::NeedPtr | PState::WaitPtr | PState::NeedHdr(_) | PState::WaitHdr(_)
                    )
                });
                if !level_open && b.probes.iter().any(|p| p.state == PState::LevelDone) {
                    debug_assert!(b.level > 0, "level 0 resolves every probe");
                    b.level -= 1;
                    Self::enter_level(b, tables);
                    self.stats.waves += 1;
                    progressed = true;
                }
            }
        }
        progressed
    }

    /// Place every live probe at the batch's current level; a probe whose
    /// table is shorter than the batch-wide start level sits the level out.
    fn enter_level(b: &mut Batch, tables: &[TableState]) {
        for p in &mut b.probes {
            if p.state == PState::Done {
                continue;
            }
            let ml = tables[p.req.table.0 as usize].max_level;
            p.state = if b.level < ml {
                PState::NeedPtr
            } else {
                PState::LevelDone
            };
        }
    }

    /// Issue this cycle's wave: gather every `Need*` fetch, sort by
    /// address, and issue one read per distinct `(addr, len)` with the
    /// probe indices as fan-out context. Stops at the first busy
    /// controller / exhausted slot; the rest retries next cycle.
    fn issue_wave(
        &mut self,
        now: u64,
        dram: &mut Dram,
        tables: &[TableState],
        hash: Option<&HashPipeline>,
    ) -> bool {
        let Some(b) = &mut self.active else {
            return false;
        };
        // The head wave honours the pipeline's bucket locks: an in-flight
        // insert owning any wanted bucket stalls the whole wave, mirroring
        // the head-of-line block at the Hash stage.
        if let Some(hash) = hash {
            let blocked = b.probes.iter().any(|p| {
                p.state == PState::NeedHead && hash.bucket_locked(p.req.table.0, p.bucket)
            });
            if blocked {
                self.stats.lock_stalls += 1;
                return false;
            }
        }
        let mut wants: Vec<(u64, u32, u32)> = Vec::new();
        for (i, p) in b.probes.iter().enumerate() {
            let t = &tables[p.req.table.0 as usize];
            let want = match p.state {
                PState::NeedKey => Some((p.req.key_addr, t.meta.key_len as u32)),
                PState::NeedHead => Some((t.bucket_addr(p.bucket), 8)),
                PState::NeedNode(a) => Some((a, (TUPLE_HEADER + HEADER_SIZE) as u32)),
                PState::NeedPtr => Some((next_ptr_addr(t, p.cur, b.level), 8)),
                PState::NeedHdr(a) => Some((a, HEADER_SIZE as u32)),
                _ => None,
            };
            if let Some((addr, len)) = want {
                wants.push((addr, len, i as u32));
            }
        }
        if wants.is_empty() {
            return false;
        }
        wants.sort_unstable();
        let mut progressed = false;
        let mut i = 0;
        while i < wants.len() {
            let (addr, len, _) = wants[i];
            let mut idxs = Vec::new();
            while i < wants.len() && wants[i].0 == addr && wants[i].1 == len {
                idxs.push(wants[i].2);
                i += 1;
            }
            if !self.reader.can_issue() {
                break;
            }
            let mark = idxs.clone();
            if self.reader.issue(now, dram, addr, len, idxs).is_err() {
                break; // controller busy: retry the rest next cycle
            }
            self.stats.reads += 1;
            self.stats.dedup_saved += mark.len() as u64 - 1;
            progressed = true;
            for &pi in &mark {
                let p = &mut b.probes[pi as usize];
                p.state = match p.state {
                    PState::NeedKey => PState::WaitKey,
                    PState::NeedHead => PState::WaitHead,
                    PState::NeedNode(a) => PState::WaitNode(a),
                    PState::NeedPtr => PState::WaitPtr,
                    PState::NeedHdr(a) => PState::WaitHdr(a),
                    s => s,
                };
            }
        }
        progressed
    }

    /// Apply one response to one probe. Terminal visibility checks run
    /// here, through the same [`cc::check_and_apply`] the pipelines use,
    /// so batched and per-probe traversal produce identical CC verdicts.
    fn resolve(&mut self, idx: usize, data: &MemData, dram: &mut Dram, tables: &[TableState]) {
        let Some(b) = &mut self.active else {
            unreachable!("response without an active batch");
        };
        let level = b.level;
        let p = &mut b.probes[idx];
        let bytes = data.as_slice();
        match p.state {
            PState::WaitKey => {
                p.key = IndexKey::from_bytes(bytes);
                if matches!(self.kind, IndexKind::Hash) {
                    let t = &tables[p.req.table.0 as usize];
                    p.bucket = bucket_of(sdbm_hash(p.key.as_bytes()), t.meta.hash_buckets);
                }
                p.state = PState::KeyDone;
            }
            PState::WaitHead => {
                let head = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
                if head == 0 {
                    p.result = Some(DbResult::Err(DbStatus::NotFound));
                    p.state = PState::Done;
                } else {
                    p.state = PState::StagedNode(head);
                }
            }
            PState::WaitNode(addr) => {
                let next = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
                let hdr = RecordHeader::decode(&bytes[TUPLE_HEADER as usize..]);
                if hdr.key == p.key {
                    let r = cc::check_and_apply(dram, addr + TUPLE_HEADER, p.req.op, p.req.ts, addr);
                    p.result = Some(r);
                    p.state = PState::Done;
                } else if next == 0 {
                    p.result = Some(DbResult::Err(DbStatus::NotFound));
                    p.state = PState::Done;
                } else {
                    p.state = PState::StagedNode(next);
                }
            }
            PState::WaitPtr => {
                let next = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
                if next != 0 {
                    p.state = PState::NeedHdr(next);
                } else if level == 0 {
                    p.result = Some(DbResult::Err(DbStatus::NotFound));
                    p.state = PState::Done;
                } else {
                    p.state = PState::LevelDone;
                }
            }
            PState::WaitHdr(cand) => {
                let hdr = RecordHeader::decode(bytes);
                if hdr.key < p.key {
                    // Same-level forward step: another level-N fetch.
                    p.cur = cand;
                    p.state = PState::NeedPtr;
                } else if level == 0 {
                    if hdr.key == p.key {
                        let r = cc::check_and_apply(dram, cand, p.req.op, p.req.ts, cand);
                        p.result = Some(r);
                    } else {
                        p.result = Some(DbResult::Err(DbStatus::NotFound));
                    }
                    p.state = PState::Done;
                } else {
                    p.state = PState::LevelDone;
                }
            }
            s => unreachable!("batch response for probe in state {s:?}"),
        }
    }

    /// Retire a finished batch: responses emit in admission order.
    fn retire(&mut self) -> u64 {
        let done = self
            .active
            .as_ref()
            .is_some_and(|b| b.probes.iter().all(|p| p.state == PState::Done));
        if !done {
            return 0;
        }
        let b = self.active.take().expect("checked above");
        let n = b.probes.len() as u64;
        for p in b.probes {
            let r = p.result.expect("done probes carry a result");
            self.out.push_back(DbResponse {
                cp: p.req.cp,
                value: r.encode(),
            });
        }
        self.stats.probes += n;
        n
    }
}
