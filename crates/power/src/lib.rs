//! Resource-utilization and power models (paper Table 4 and §5.8).
//!
//! The paper reports per-module flip-flop / LUT / BRAM counts from the
//! Xilinx toolchain and an XPE power estimate of ≈11.5 W for the whole
//! design, against a 380 W aggregate TDP for the four-chip Xeon baseline.
//! Both are *static vendor-tool outputs*, so the reproduction is a
//! parameterized model seeded with the paper's numbers:
//!
//! * [`utilization`] regenerates Table 4 for any worker count and
//!   pipeline configuration (the paper's own counts fall out at 4 workers
//!   with the default configuration);
//! * [`PowerModel`] splits the 11.5 W into static leakage plus dynamic
//!   power proportional to the active resources and clock, supporting the
//!   what-if scaling the paper's §5.8/§7 discuss (more workers, more
//!   scanners, datacenter-grade chips).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use bionicdb_fpga::FpgaConfig;

/// Flip-flop / LUT / BRAM counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    /// Flip-flops.
    pub ff: u64,
    /// Look-up tables.
    pub lut: u64,
    /// Block RAMs.
    pub bram: u64,
}

impl Resources {
    /// Component-wise addition.
    pub fn plus(self, o: Resources) -> Resources {
        Resources {
            ff: self.ff + o.ff,
            lut: self.lut + o.lut,
            bram: self.bram + o.bram,
        }
    }

    /// Component-wise scaling.
    pub fn times(self, k: u64) -> Resources {
        Resources {
            ff: self.ff * k,
            lut: self.lut * k,
            bram: self.bram * k,
        }
    }
}

/// Total programmable resources of the Virtex-5 LX330 (paper Table 4).
pub const VIRTEX5_LX330: Resources = Resources {
    ff: 207_360,
    lut: 207_360,
    bram: 288,
};

/// Fixed HC-2 infrastructure (host interface, crossbar memory
/// interconnect, the unused vendor processor) — paper Table 4 notes almost
/// half the chip goes to it.
pub const HC2_MODULES: Resources = Resources {
    ff: 98_507,
    lut: 76_639,
    bram: 103,
};

/// Memory arbiters (shared).
pub const MEMORY_ARBITERS: Resources = Resources {
    ff: 1_192,
    lut: 5_800,
    bram: 0,
};

/// Catalogue (shared BRAM store).
pub const CATALOGUE: Resources = Resources {
    ff: 1_484,
    lut: 1_964,
    bram: 8,
};

/// On-chip communication channels (crossbar; shared).
pub const COMMUNICATION: Resources = Resources {
    ff: 2_482,
    lut: 3_191,
    bram: 8,
};

// Per-worker units. The paper's Table 4 rows aggregate four workers:
// hash 12 932 FF / 14 504 LUT / 24 BRAM etc., so one worker uses a quarter.

/// One worker's hash pipeline (each Traverse stage beyond the first adds
/// roughly the cost of another Compare/Traverse datapath).
pub fn hash_pipeline(traverse_stages: usize) -> Resources {
    let base = Resources {
        ff: 12_932 / 4,
        lut: 14_504 / 4,
        bram: 6,
    };
    let extra = Resources {
        ff: 350,
        lut: 420,
        bram: 1,
    }
    .times(traverse_stages.saturating_sub(1) as u64);
    base.plus(extra)
}

/// One worker's skiplist pipeline: the paper's 8-stage + 1-scanner build
/// uses 27 300/4 FF and 35 968/4 LUT; stages and scanners scale it.
pub fn skiplist_pipeline(stages: usize, scanners: usize) -> Resources {
    let per_stage = Resources {
        ff: 27_300 / 4 / 9,
        lut: 35_968 / 4 / 9,
        bram: 1,
    };
    per_stage.times((stages + scanners) as u64)
}

/// One softcore (with its register files on BRAM).
pub const SOFTCORE: Resources = Resources {
    ff: 7_080 / 4,
    lut: 8_796 / 4,
    bram: 3,
};

/// One row of the utilization report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtilizationRow {
    /// Module name.
    pub module: String,
    /// Aggregate resources for the configured instance count.
    pub res: Resources,
}

/// Regenerate paper Table 4 for `workers` workers under `cfg`.
pub fn utilization(workers: usize, cfg: &FpgaConfig) -> Vec<UtilizationRow> {
    let w = workers as u64;
    vec![
        UtilizationRow {
            module: "Hash".into(),
            res: hash_pipeline(cfg.hash_traverse_stages).times(w),
        },
        UtilizationRow {
            module: "Skiplist".into(),
            res: skiplist_pipeline(cfg.skiplist_stages, cfg.skiplist_scanners).times(w),
        },
        UtilizationRow {
            module: "Softcore".into(),
            res: SOFTCORE.times(w),
        },
        UtilizationRow {
            module: "Catalogue".into(),
            res: CATALOGUE,
        },
        UtilizationRow {
            module: "Communication".into(),
            res: COMMUNICATION,
        },
        UtilizationRow {
            module: "Memory arbiters".into(),
            res: MEMORY_ARBITERS,
        },
        UtilizationRow {
            module: "HC-2 modules".into(),
            res: HC2_MODULES,
        },
    ]
}

/// Sum of a utilization report.
pub fn total(rows: &[UtilizationRow]) -> Resources {
    rows.iter()
        .fold(Resources::default(), |acc, r| acc.plus(r.res))
}

/// Utilization fractions against the LX330.
pub fn utilization_fraction(rows: &[UtilizationRow]) -> (f64, f64, f64) {
    let t = total(rows);
    (
        t.ff as f64 / VIRTEX5_LX330.ff as f64,
        t.lut as f64 / VIRTEX5_LX330.lut as f64,
        t.bram as f64 / VIRTEX5_LX330.bram as f64,
    )
}

/// TDP of one Intel Xeon E7-4807 chip (paper §5.8).
pub const XEON_E7_4807_TDP_W: f64 = 95.0;
/// The paper's Silo baseline uses four chips.
pub const XEON_CHIPS: usize = 4;

/// An XPE-like power model: static leakage plus dynamic power proportional
/// to active resources and clock frequency.
///
/// Calibrated so that the paper's configuration (4 workers, 125 MHz,
/// ≈70% utilization) lands at ≈11.5 W.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Device + board static power, watts.
    pub static_w: f64,
    /// Dynamic watts per LUT·GHz.
    pub w_per_lut_ghz: f64,
    /// Dynamic watts per FF·GHz.
    pub w_per_ff_ghz: f64,
    /// Dynamic watts per BRAM·GHz.
    pub w_per_bram_ghz: f64,
    /// Memory-subsystem (DDR2 DIMMs + controllers) power, watts.
    pub memory_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_w: 2.4,
            w_per_lut_ghz: 2.2e-4,
            w_per_ff_ghz: 1.0e-4,
            w_per_bram_ghz: 2.0e-2,
            memory_w: 2.7,
        }
    }
}

impl PowerModel {
    /// Estimated watts for a design using `rows` at `clock_hz`.
    pub fn estimate(&self, rows: &[UtilizationRow], clock_hz: u64) -> f64 {
        let t = total(rows);
        let ghz = clock_hz as f64 / 1e9;
        self.static_w
            + self.memory_w
            + ghz
                * (t.lut as f64 * self.w_per_lut_ghz
                    + t.ff as f64 * self.w_per_ff_ghz
                    + t.bram as f64 * self.w_per_bram_ghz)
    }

    /// Power-saving ratio vs. the paper's 4-chip Xeon TDP.
    pub fn xeon_ratio(&self, watts: f64) -> f64 {
        (XEON_E7_4807_TDP_W * XEON_CHIPS as f64) / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_rows() -> Vec<UtilizationRow> {
        utilization(4, &FpgaConfig::default())
    }

    #[test]
    fn four_worker_totals_match_paper_table4() {
        let rows = paper_rows();
        // BionicDB's own logic (excluding HC-2): ~70k LUTs, ~53k FFs.
        let own: Resources = rows
            .iter()
            .filter(|r| r.module != "HC-2 modules")
            .fold(Resources::default(), |a, r| a.plus(r.res));
        assert!((65_000..78_000).contains(&own.lut), "own LUTs {}", own.lut);
        assert!((48_000..58_000).contains(&own.ff), "own FFs {}", own.ff);
        // Whole design ≈70% of the chip.
        let (ff, lut, bram) = utilization_fraction(&rows);
        assert!((0.65..0.80).contains(&ff), "FF fraction {ff}");
        assert!((0.65..0.80).contains(&lut), "LUT fraction {lut}");
        assert!((0.55..0.80).contains(&bram), "BRAM fraction {bram}");
    }

    #[test]
    fn skiplist_dominates_worker_resources() {
        // Paper §5.8: skiplist ≈50% of BionicDB resources, hash ≈20%.
        let rows = paper_rows();
        let get = |m: &str| rows.iter().find(|r| r.module == m).unwrap().res.lut as f64;
        let own: f64 = rows
            .iter()
            .filter(|r| r.module != "HC-2 modules")
            .map(|r| r.res.lut as f64)
            .sum();
        assert!((0.40..0.60).contains(&(get("Skiplist") / own)));
        assert!((0.12..0.30).contains(&(get("Hash") / own)));
    }

    #[test]
    fn power_estimate_matches_paper() {
        let rows = paper_rows();
        let w = PowerModel::default().estimate(&rows, 125_000_000);
        assert!((10.0..13.0).contains(&w), "estimate {w} W vs paper 11.5 W");
        // Order-of-magnitude saving vs 380 W Xeon TDP.
        let ratio = PowerModel::default().xeon_ratio(w);
        assert!(ratio > 10.0, "power ratio {ratio}");
    }

    #[test]
    fn more_workers_use_more_resources_and_power() {
        let cfg = FpgaConfig::default();
        let small = PowerModel::default().estimate(&utilization(4, &cfg), cfg.clock_hz);
        let big = PowerModel::default().estimate(&utilization(16, &cfg), cfg.clock_hz);
        assert!(big > small);
        let t4 = total(&utilization(4, &cfg));
        let t16 = total(&utilization(16, &cfg));
        assert!(t16.lut > t4.lut && t16.ff > t4.ff);
    }

    #[test]
    fn extra_scanners_cost_resources() {
        let cfg = FpgaConfig::default();
        let one = skiplist_pipeline(cfg.skiplist_stages, 1);
        let five = skiplist_pipeline(cfg.skiplist_stages, 5);
        assert!(five.lut > one.lut);
    }
}
