//! On-chip message-passing channels (paper §4.6).
//!
//! Partitioned databases (H-Store, DORA) make partitions core-private: a
//! worker can never touch a remote partition directly, it must send a
//! request message to the remote site, where a delegate processes it and
//! returns a response. On CPUs that communication is forced through the
//! shared-memory hierarchy — cache-line ping-pong at best, DRAM round trips
//! plus queue synchronization at worst (paper Table 3). BionicDB instead
//! wires **dedicated on-chip channels** between workers: a request/response
//! pair costs 6 cycles (48 ns at 125 MHz), no memory round trips, no
//! synchronization.
//!
//! Each worker owns a communication *link* (request channel + response
//! channel). A request packet is piggybacked with the transaction timestamp
//! (for CC at the remote coprocessor) and source/destination worker IDs for
//! routing. A background unit at the destination (implemented in the worker
//! glue of the `bionicdb` crate) catches inbound requests and dispatches
//! them to its index coprocessor as *background* requests that overlap
//! freely with the local foreground requests.
//!
//! Two topologies are provided:
//!
//! * [`Topology::Crossbar`] — the paper's implementation: every pair of
//!   workers directly connected; uniform single-hop latency. The paper
//!   notes this does not scale to many workers.
//! * [`Topology::Ring`] — the scalable alternative the paper suggests as
//!   future work: latency grows with ring distance. The bench suite uses it
//!   for the interconnect ablation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::VecDeque;

use bionicdb_fpga::fault::NocFaults;
use bionicdb_softcore::request::{DbRequest, DbResponse, PartitionId};

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Full crossbar: one hop between any pair (the paper's design).
    Crossbar,
    /// Bidirectional ring: latency scales with ring distance (future-work
    /// topology suggested in paper §4.6).
    Ring,
    /// Multiple chips/nodes in a shared-nothing cluster (paper §4.6:
    /// "it is vital to scale BionicDB across multiple FPGA nodes ... the
    /// message-passing channels should be diversified with additional
    /// connectivities for inter-node communication"). Workers are grouped
    /// `workers_per_node` to a chip; intra-node messages ride the crossbar
    /// (one hop), inter-node messages pay `inter_node_hops` hops of the
    /// base latency (modelling a serial link / NIC between boards).
    MultiChip {
        /// Workers per chip/node.
        workers_per_node: usize,
        /// Inter-node cost in units of the one-hop latency (e.g. with
        /// 3-cycle hops, 25 hops ≈ 600 ns — an aggressive serial link).
        inter_node_hops: u64,
    },
}

/// What travels over a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A DB instruction heading to its home partition's coprocessor.
    Request(DbRequest),
    /// A completed result heading back to the initiator's CP register.
    Response(DbResponse),
}

/// A routed message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Sending worker.
    pub src: PartitionId,
    /// Receiving worker.
    pub dst: PartitionId,
    /// Per-source request sequence number. Responses echo the sequence
    /// number of the request they answer, which is what lets the sender
    /// detect duplicates when a lost message is retransmitted (the worker
    /// glue's bounded-retry path). Workers that never retransmit leave it 0.
    pub seq: u64,
    /// Request or response.
    pub payload: Payload,
}

/// Interconnect statistics.
///
/// Conservation invariant: every accepted send is eventually delivered,
/// was dropped by an injected fault, or is still in flight —
/// `sent == delivered + dropped + in_flight()`. Back-pressure rejections
/// (`rejected`) never enter the channel and are counted separately, so an
/// injected drop is always distinguishable from a busy link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NocStats {
    /// Messages accepted into a channel (including later-dropped ones).
    pub sent: u64,
    /// Messages consumed by their destination worker.
    pub delivered: u64,
    /// Messages lost to an injected [`NocFaults`] drop.
    pub dropped: u64,
    /// Sends rejected because the per-source issue limit was reached
    /// (back-pressure, not loss: the sender retries next cycle).
    pub rejected: u64,
    /// Messages that paid an injected extra delay.
    pub delayed: u64,
    /// Sum of in-flight latencies over accepted, non-dropped messages
    /// (mean = `total_latency / (sent - dropped)`).
    pub total_latency: u64,
}

/// Per-link (per-destination channel) utilization counters. Updated only
/// inside `send`/`poll`, which fire at identical cycles under strict
/// stepping and fast-forward, so link stats never diverge between the two
/// schedulers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages accepted into this destination's channel (including ones
    /// later lost to an injected drop — the sender cannot tell).
    pub sent: u64,
    /// Messages consumed by the destination worker.
    pub delivered: u64,
    /// High-water mark of the channel's queue depth (in-flight plus
    /// waiting-to-be-consumed messages).
    pub queue_high_water: u64,
}

/// Error: the sender's channel cannot accept another message this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocBusy;

/// The on-chip interconnect between partition workers.
#[derive(Debug)]
pub struct Noc {
    topology: Topology,
    hop_latency: u64,
    n: usize,
    /// Per-destination in-flight messages `(deliver_at, packet)`, kept
    /// sorted by construction (uniform per-pair latency, FIFO channels).
    /// An injected delay may push one entry past its successors; delivery
    /// then head-of-line blocks on it (the channel is a physical FIFO),
    /// which `peek`/`poll`/`next_event` model by only examining the front.
    inbound: Vec<VecDeque<(u64, Packet)>>,
    /// Per-source issue tracking: a link accepts one message per cycle.
    last_send: Vec<(u64, u32)>,
    /// Messages a single link may inject per cycle.
    issue_width: u32,
    stats: NocStats,
    /// Per-destination link counters, indexed like `inbound`.
    link_stats: Vec<LinkStats>,
    /// Injected fault schedule (empty by default; see `bionicdb_fpga::fault`).
    faults: NocFaults,
    /// Accepted sends so far — the ordinal the fault schedule matches
    /// against.
    sends_seen: u64,
}

impl Noc {
    /// Build an interconnect for `n` workers with the given one-hop latency
    /// (paper Table 3: 3 cycles = 24 ns at 125 MHz).
    pub fn new(topology: Topology, n: usize, hop_latency: u64) -> Self {
        assert!(n >= 1);
        Noc {
            topology,
            hop_latency: hop_latency.max(1),
            n,
            inbound: (0..n).map(|_| VecDeque::new()).collect(),
            last_send: vec![(u64::MAX, 0); n],
            issue_width: 1,
            stats: NocStats::default(),
            link_stats: vec![LinkStats::default(); n],
            faults: NocFaults::default(),
            sends_seen: 0,
        }
    }

    /// Install an injected fault schedule. An empty schedule leaves every
    /// send bit-identical to an unfaulted run.
    pub fn set_faults(&mut self, faults: NocFaults) {
        self.faults = faults;
    }

    /// Number of hops between two workers under the current topology.
    pub fn hops(&self, a: PartitionId, b: PartitionId) -> u64 {
        match self.topology {
            Topology::Crossbar => 1,
            Topology::Ring => {
                let (a, b) = (a.0 as usize % self.n, b.0 as usize % self.n);
                let d = a.abs_diff(b);
                d.min(self.n - d).max(1) as u64
            }
            Topology::MultiChip {
                workers_per_node,
                inter_node_hops,
            } => {
                let (na, nb) = (
                    a.0 as usize / workers_per_node,
                    b.0 as usize / workers_per_node,
                );
                if na == nb {
                    1
                } else {
                    inter_node_hops.max(1)
                }
            }
        }
    }

    /// Latency in cycles for a message from `a` to `b`.
    pub fn latency(&self, a: PartitionId, b: PartitionId) -> u64 {
        self.hops(a, b) * self.hop_latency
    }

    /// Inject a packet at cycle `now`. A link accepts [`issue_width`]
    /// messages per cycle; beyond that the sender must retry (back-pressure
    /// into the dispatch stage).
    ///
    /// [`issue_width`]: Noc::new
    pub fn send(&mut self, now: u64, pkt: Packet) -> Result<(), NocBusy> {
        let src = pkt.src.0 as usize;
        assert!(
            src < self.n && (pkt.dst.0 as usize) < self.n,
            "packet for unknown worker"
        );
        let (cycle, count) = &mut self.last_send[src];
        if *cycle == now && *count >= self.issue_width {
            self.stats.rejected += 1;
            return Err(NocBusy);
        }
        if *cycle != now {
            *cycle = now;
            *count = 0;
        }
        *count += 1;
        self.stats.sent += 1;
        self.link_stats[pkt.dst.0 as usize].sent += 1;
        // Injected faults: the nth accepted send may vanish in flight (the
        // sender cannot tell — recovering is the worker retry path's job)
        // or pay extra latency. With no schedule installed this is a
        // counter bump only.
        let n = self.sends_seen;
        self.sends_seen += 1;
        if self.faults.drop_for(n) {
            self.stats.dropped += 1;
            return Ok(());
        }
        let mut lat = self.latency(pkt.src, pkt.dst);
        if let Some(extra) = self.faults.delay_for(n) {
            lat += extra;
            self.stats.delayed += 1;
        }
        let dst = pkt.dst.0 as usize;
        self.inbound[dst].push_back((now + lat, pkt));
        let depth = self.inbound[dst].len() as u64;
        let ls = &mut self.link_stats[dst];
        ls.queue_high_water = ls.queue_high_water.max(depth);
        self.stats.total_latency += lat;
        Ok(())
    }

    /// Peek the next packet delivered to `dst` by cycle `now` without
    /// consuming it (the background unit uses this to leave a request in
    /// the channel while its coprocessor input queue is full).
    pub fn peek(&self, now: u64, dst: PartitionId) -> Option<&Packet> {
        match self.inbound[dst.0 as usize].front() {
            Some((ready, pkt)) if *ready <= now => Some(pkt),
            _ => None,
        }
    }

    /// Pop the next packet delivered to `dst` by cycle `now`, if any.
    pub fn poll(&mut self, now: u64, dst: PartitionId) -> Option<Packet> {
        let q = &mut self.inbound[dst.0 as usize];
        match q.front() {
            Some((ready, _)) if *ready <= now => {
                self.stats.delivered += 1;
                self.link_stats[dst.0 as usize].delivered += 1;
                Some(q.pop_front().expect("front checked").1)
            }
            _ => None,
        }
    }

    /// True when no messages are in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.inbound.iter().all(VecDeque::is_empty)
    }

    /// Messages currently in flight (accepted, not yet consumed). Closes
    /// the [`NocStats`] conservation identity
    /// `sent == delivered + dropped + in_flight`.
    pub fn in_flight(&self) -> u64 {
        self.inbound.iter().map(|q| q.len() as u64).sum()
    }

    /// The earliest cycle at which some queued packet becomes (or already
    /// is) visible to `peek`/`poll`, or `None` when every channel is empty.
    ///
    /// Because `peek`/`poll` only examine each destination's queue *front*,
    /// a front that is already deliverable (`ready <= now`) may be consumed
    /// on the next tick — reported as `now + 1`. A front still in flight
    /// becomes visible exactly at its `ready` cycle. Deeper entries cannot
    /// be observed before the front, so the front is the exact bound.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.inbound
            .iter()
            .filter_map(|q| q.front().map(|(ready, _)| (*ready).max(now + 1)))
            .min()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Per-destination link counters, indexed by worker id.
    pub fn link_stats(&self) -> &[LinkStats] {
        &self.link_stats
    }

    /// The configured topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_softcore::catalogue::TableId;
    use bionicdb_softcore::request::{CpSlot, DbOp};

    fn req_pkt(src: u16, dst: u16) -> Packet {
        Packet {
            src: PartitionId(src),
            dst: PartitionId(dst),
            seq: 0,
            payload: Payload::Request(DbRequest {
                op: DbOp::Search,
                table: TableId(0),
                key_addr: 0,
                payload_addr: 0,
                scan_count: 0,
                out_addr: 0,
                ts: 1,
                cp: CpSlot {
                    worker: PartitionId(src),
                    index: 0,
                },
                home: PartitionId(dst),
            }),
        }
    }

    #[test]
    fn crossbar_delivers_after_hop_latency() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(10, req_pkt(0, 2)).unwrap();
        assert!(
            noc.poll(12, PartitionId(2)).is_none(),
            "not before 3 cycles"
        );
        let pkt = noc.poll(13, PartitionId(2)).expect("delivered at 13");
        assert_eq!(pkt.src, PartitionId(0));
        assert!(noc.is_idle());
    }

    #[test]
    fn request_response_pair_is_six_cycles() {
        // Paper Table 3: 48 ns = 6 cycles for a request/response pair.
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.send(0, req_pkt(0, 1)).unwrap();
        let t_req = (0..100)
            .find(|&t| noc.poll(t, PartitionId(1)).is_some())
            .unwrap();
        noc.send(t_req, req_pkt(1, 0)).unwrap();
        let t_resp = (0..100)
            .find(|&t| noc.poll(t, PartitionId(0)).is_some())
            .unwrap();
        assert_eq!(t_resp, 6);
    }

    #[test]
    fn link_issue_width_backpressures() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(5, req_pkt(0, 1)).unwrap();
        assert_eq!(noc.send(5, req_pkt(0, 2)), Err(NocBusy));
        assert!(noc.send(6, req_pkt(0, 2)).is_ok());
        assert_eq!(noc.stats().rejected, 1);
        assert_eq!(noc.stats().sent, 2, "rejected sends are not counted sent");
    }

    #[test]
    fn injected_drop_vanishes_in_flight() {
        use bionicdb_fpga::fault::FaultPlan;
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.set_faults(FaultPlan::none().drop_nth_send(1).noc);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(0, 1)).unwrap(); // dropped
        noc.send(2, req_pkt(0, 1)).unwrap();
        let mut got = 0;
        for t in 0..20 {
            while noc.poll(t, PartitionId(1)).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 2, "the dropped packet never arrives");
        let s = noc.stats();
        assert_eq!((s.sent, s.delivered, s.dropped, s.rejected), (3, 2, 1, 0));
        assert_eq!(s.sent, s.delivered + s.dropped + noc.in_flight());
    }

    #[test]
    fn injected_delay_holds_the_channel_fifo() {
        use bionicdb_fpga::fault::FaultPlan;
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.set_faults(FaultPlan::none().delay_nth_send(0, 10).noc);
        noc.send(0, req_pkt(0, 1)).unwrap(); // ready at 13 instead of 3
        noc.send(1, req_pkt(0, 1)).unwrap(); // ready at 4, but behind
        assert!(noc.poll(4, PartitionId(1)).is_none(), "head-of-line blocked");
        assert!(noc.poll(13, PartitionId(1)).is_some());
        assert!(noc.poll(13, PartitionId(1)).is_some());
        assert_eq!(noc.stats().delayed, 1);
        assert_eq!(noc.in_flight(), 0);
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        let mut a = req_pkt(0, 1);
        let mut b = req_pkt(0, 1);
        if let Payload::Request(r) = &mut a.payload {
            r.ts = 111;
        }
        if let Payload::Request(r) = &mut b.payload {
            r.ts = 222;
        }
        noc.send(0, a).unwrap();
        noc.send(1, b).unwrap();
        let p1 = noc.poll(10, PartitionId(1)).unwrap();
        let p2 = noc.poll(10, PartitionId(1)).unwrap();
        match (p1.payload, p2.payload) {
            (Payload::Request(r1), Payload::Request(r2)) => {
                assert_eq!((r1.ts, r2.ts), (111, 222));
            }
            other => panic!("unexpected payloads {other:?}"),
        }
    }

    #[test]
    fn ring_distance_scales_latency() {
        let noc = Noc::new(Topology::Ring, 8, 3);
        assert_eq!(noc.hops(PartitionId(0), PartitionId(1)), 1);
        assert_eq!(noc.hops(PartitionId(0), PartitionId(4)), 4);
        assert_eq!(noc.hops(PartitionId(0), PartitionId(7)), 1, "wraps around");
        assert_eq!(noc.latency(PartitionId(1), PartitionId(5)), 12);
        let xbar = Noc::new(Topology::Crossbar, 8, 3);
        assert_eq!(xbar.latency(PartitionId(1), PartitionId(5)), 3);
    }

    #[test]
    fn multichip_groups_pay_internode_latency() {
        let noc = Noc::new(
            Topology::MultiChip {
                workers_per_node: 4,
                inter_node_hops: 25,
            },
            8,
            3,
        );
        // Same node: one hop.
        assert_eq!(noc.latency(PartitionId(0), PartitionId(3)), 3);
        assert_eq!(noc.latency(PartitionId(5), PartitionId(7)), 3);
        // Cross node: the serial-link cost.
        assert_eq!(noc.latency(PartitionId(0), PartitionId(4)), 75);
        assert_eq!(noc.latency(PartitionId(7), PartitionId(1)), 75);
    }

    #[test]
    fn mean_latency_statistic() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(1, 2)).unwrap();
        let s = noc.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.total_latency, 6);
    }

    #[test]
    fn link_stats_track_per_destination_traffic() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(2, 1)).unwrap();
        noc.send(2, req_pkt(0, 3)).unwrap();
        assert_eq!(noc.link_stats()[1].sent, 2);
        assert_eq!(noc.link_stats()[1].queue_high_water, 2);
        assert_eq!(noc.link_stats()[3].sent, 1);
        for t in 0..10 {
            while noc.poll(t, PartitionId(1)).is_some() {}
        }
        assert_eq!(noc.link_stats()[1].delivered, 2);
        assert_eq!(noc.link_stats()[0], LinkStats::default());
    }

    #[test]
    #[should_panic(expected = "unknown worker")]
    fn out_of_range_destination_panics() {
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        let _ = noc.send(0, req_pkt(0, 5));
    }
}
