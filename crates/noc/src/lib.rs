//! On-chip message-passing channels (paper §4.6).
//!
//! Partitioned databases (H-Store, DORA) make partitions core-private: a
//! worker can never touch a remote partition directly, it must send a
//! request message to the remote site, where a delegate processes it and
//! returns a response. On CPUs that communication is forced through the
//! shared-memory hierarchy — cache-line ping-pong at best, DRAM round trips
//! plus queue synchronization at worst (paper Table 3). BionicDB instead
//! wires **dedicated on-chip channels** between workers: a request/response
//! pair costs 6 cycles (48 ns at 125 MHz), no memory round trips, no
//! synchronization.
//!
//! Each worker owns a communication *link* (request channel + response
//! channel). A request packet is piggybacked with the transaction timestamp
//! (for CC at the remote coprocessor) and source/destination worker IDs for
//! routing. A background unit at the destination (implemented in the worker
//! glue of the `bionicdb` crate) catches inbound requests and dispatches
//! them to its index coprocessor as *background* requests that overlap
//! freely with the local foreground requests.
//!
//! Two topologies are provided:
//!
//! * [`Topology::Crossbar`] — the paper's implementation: every pair of
//!   workers directly connected; uniform single-hop latency. The paper
//!   notes this does not scale to many workers.
//! * [`Topology::Ring`] — the scalable alternative the paper suggests as
//!   future work: latency grows with ring distance. The bench suite uses it
//!   for the interconnect ablation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::VecDeque;

use bionicdb_fpga::fault::NocFaults;
use bionicdb_softcore::request::{DbRequest, DbResponse, PartitionId};

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Full crossbar: one hop between any pair (the paper's design).
    Crossbar,
    /// Bidirectional ring: latency scales with ring distance (future-work
    /// topology suggested in paper §4.6).
    Ring,
    /// Multiple chips/nodes in a shared-nothing cluster (paper §4.6:
    /// "it is vital to scale BionicDB across multiple FPGA nodes ... the
    /// message-passing channels should be diversified with additional
    /// connectivities for inter-node communication"). Workers are grouped
    /// `workers_per_node` to a chip; intra-node messages ride the crossbar
    /// (one hop), inter-node messages pay `inter_node_hops` hops of the
    /// base latency (modelling a serial link / NIC between boards).
    MultiChip {
        /// Workers per chip/node.
        workers_per_node: usize,
        /// Inter-node cost in units of the one-hop latency (e.g. with
        /// 3-cycle hops, 25 hops ≈ 600 ns — an aggressive serial link).
        inter_node_hops: u64,
    },
    /// A fleet of chips arranged in a chip-level ring — the generalization
    /// of [`Topology::MultiChip`] the multi-process fleet simulator models:
    /// intra-chip messages ride the local crossbar (one hop), inter-chip
    /// messages pay `neighbor_hops` per chip-ring step between the two
    /// chips (shortest way around). With two chips this is exactly
    /// `MultiChip { inter_node_hops: neighbor_hops }`; beyond that, distance
    /// between chips matters, the way cabling between boards makes it.
    Fleet {
        /// Workers per chip.
        workers_per_chip: usize,
        /// Cost of one chip-ring step, in units of the one-hop latency.
        neighbor_hops: u64,
    },
}

impl Topology {
    /// Hop count between workers `a` and `b` of an `n`-worker interconnect
    /// under this topology — the single source of topology math, used both
    /// to build the cached lookahead matrix and to answer live
    /// [`Noc::hops`] queries (the two can therefore never diverge).
    pub fn hops_between(&self, n: usize, a: usize, b: usize) -> u64 {
        match *self {
            Topology::Crossbar => 1,
            Topology::Ring => {
                let (a, b) = (a % n, b % n);
                let d = a.abs_diff(b);
                d.min(n - d).max(1) as u64
            }
            Topology::MultiChip {
                workers_per_node,
                inter_node_hops,
            } => {
                if a / workers_per_node == b / workers_per_node {
                    1
                } else {
                    inter_node_hops.max(1)
                }
            }
            Topology::Fleet {
                workers_per_chip,
                neighbor_hops,
            } => {
                let (ca, cb) = (a / workers_per_chip, b / workers_per_chip);
                if ca == cb {
                    1
                } else {
                    let chips = n.div_ceil(workers_per_chip);
                    let d = ca.abs_diff(cb);
                    let steps = d.min(chips - d).max(1) as u64;
                    steps * neighbor_hops.max(1)
                }
            }
        }
    }
}

/// What travels over a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A DB instruction heading to its home partition's coprocessor.
    Request(DbRequest),
    /// A completed result heading back to the initiator's CP register.
    Response(DbResponse),
}

/// A routed message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Sending worker.
    pub src: PartitionId,
    /// Receiving worker.
    pub dst: PartitionId,
    /// Per-source request sequence number. Responses echo the sequence
    /// number of the request they answer, which is what lets the sender
    /// detect duplicates when a lost message is retransmitted (the worker
    /// glue's bounded-retry path). Workers that never retransmit leave it 0.
    pub seq: u64,
    /// Request or response.
    pub payload: Payload,
}

/// Interconnect statistics.
///
/// Conservation invariant: every accepted send is eventually delivered,
/// was dropped by an injected fault, or is still in flight —
/// `sent == delivered + dropped + in_flight()`. Back-pressure rejections
/// (`rejected`) never enter the channel and are counted separately, so an
/// injected drop is always distinguishable from a busy link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NocStats {
    /// Messages accepted into a channel (including later-dropped ones).
    pub sent: u64,
    /// Messages consumed by their destination worker.
    pub delivered: u64,
    /// Messages lost to an injected [`NocFaults`] drop.
    pub dropped: u64,
    /// Sends rejected because the per-source issue limit was reached
    /// (back-pressure, not loss: the sender retries next cycle).
    pub rejected: u64,
    /// Messages that paid an injected extra delay.
    pub delayed: u64,
    /// Sum of in-flight latencies over accepted, non-dropped messages
    /// (mean = `total_latency / (sent - dropped)`).
    pub total_latency: u64,
}

impl NocStats {
    /// Mean in-flight latency over accepted, non-dropped messages.
    ///
    /// Guarded against the all-dropped case (`sent == dropped`, possible
    /// under a fault plan that drops every send): an empty sample has no
    /// mean, reported as `0.0` instead of a division by zero.
    pub fn mean_latency(&self) -> f64 {
        let n = self.sent.saturating_sub(self.dropped);
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }
}

/// Per-link (per-destination channel) utilization counters. Updated only
/// inside `send`/`poll`, which fire at identical cycles under strict
/// stepping and fast-forward, so link stats never diverge between the two
/// schedulers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages accepted into this destination's channel (including ones
    /// later lost to an injected drop — the sender cannot tell).
    pub sent: u64,
    /// Messages consumed by the destination worker.
    pub delivered: u64,
    /// High-water mark of the channel's queue depth (in-flight plus
    /// waiting-to-be-consumed messages).
    pub queue_high_water: u64,
}

/// Error: the sender's channel cannot accept another message this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocBusy;

/// The on-chip interconnect between partition workers.
#[derive(Debug)]
pub struct Noc {
    topology: Topology,
    hop_latency: u64,
    n: usize,
    /// Per-destination in-flight messages `(deliver_at, packet)`, kept
    /// sorted by construction (uniform per-pair latency, FIFO channels).
    /// An injected delay may push one entry past its successors; delivery
    /// then head-of-line blocks on it (the channel is a physical FIFO),
    /// which `peek`/`poll`/`next_event` model by only examining the front.
    inbound: Vec<VecDeque<(u64, Packet)>>,
    /// Per-source issue tracking: a link accepts one message per cycle.
    last_send: Vec<(u64, u32)>,
    /// Messages a single link may inject per cycle.
    issue_width: u32,
    stats: NocStats,
    /// Per-destination link counters, indexed like `inbound`.
    link_stats: Vec<LinkStats>,
    /// Injected fault schedule (empty by default; see `bionicdb_fpga::fault`).
    faults: NocFaults,
    /// Accepted sends so far — the ordinal the fault schedule matches
    /// against.
    sends_seen: u64,
    /// Cached per-pair latency matrix (`[src * n + dst]`), built once at
    /// construction: the **per-pair lookahead** of the epoch-parallel
    /// scheduler. `latency()` recomputes from the topology; hot scheduler
    /// paths index this cache instead.
    pair_latency: Vec<u64>,
    /// Cached per-destination minimum incoming latency
    /// (`min over src != dst of pair_latency[src][dst]`); the one-worker
    /// degenerate case falls back to `hop_latency`.
    min_incoming: Vec<u64>,
}

impl Noc {
    /// Build an interconnect for `n` workers with the given one-hop latency
    /// (paper Table 3: 3 cycles = 24 ns at 125 MHz).
    pub fn new(topology: Topology, n: usize, hop_latency: u64) -> Self {
        assert!(n >= 1);
        let hop_latency = hop_latency.max(1);
        let pair_latency: Vec<u64> = (0..n)
            .flat_map(|a| (0..n).map(move |b| topology.hops_between(n, a, b) * hop_latency))
            .collect();
        let min_incoming: Vec<u64> = (0..n)
            .map(|dst| {
                (0..n)
                    .filter(|&src| src != dst)
                    .map(|src| pair_latency[src * n + dst])
                    .min()
                    .unwrap_or(hop_latency)
            })
            .collect();
        Noc {
            topology,
            hop_latency,
            n,
            inbound: (0..n).map(|_| VecDeque::new()).collect(),
            last_send: vec![(u64::MAX, 0); n],
            issue_width: 1,
            stats: NocStats::default(),
            link_stats: vec![LinkStats::default(); n],
            faults: NocFaults::default(),
            sends_seen: 0,
            pair_latency,
            min_incoming,
        }
    }

    /// Install an injected fault schedule. An empty schedule leaves every
    /// send bit-identical to an unfaulted run.
    pub fn set_faults(&mut self, faults: NocFaults) {
        self.faults = faults;
    }

    /// Number of hops between two workers under the current topology.
    pub fn hops(&self, a: PartitionId, b: PartitionId) -> u64 {
        self.topology
            .hops_between(self.n, a.0 as usize, b.0 as usize)
    }

    /// Latency in cycles for a message from `a` to `b`.
    pub fn latency(&self, a: PartitionId, b: PartitionId) -> u64 {
        self.hops(a, b) * self.hop_latency
    }

    /// Cached minimum latency from `src` to `dst` — the **per-pair
    /// lookahead** (paper's hardware islands intuition: communication
    /// topology, not core count, bounds how tightly two partitions must
    /// synchronize). For the provided deterministic topologies this equals
    /// [`Noc::latency`], but it is read from the matrix built at
    /// construction so the epoch scheduler's per-barrier O(n²) horizon
    /// computation never re-derives topology math.
    pub fn min_latency(&self, src: PartitionId, dst: PartitionId) -> u64 {
        self.pair_latency[src.0 as usize * self.n + dst.0 as usize]
    }

    /// Cached minimum latency of any message *into* `dst` from another
    /// worker — **defined** as the per-destination row minimum of the
    /// lookahead matrix, `min over src != dst of min_latency(src, dst)`.
    /// That row minimum is what the epoch (and fleet) barrier inherits as
    /// its horizon, so this value is never smaller than any real arrival
    /// latency into `dst`. Only a *single-worker interconnect* has no
    /// sources at all; the row minimum is then vacuous and the base one-hop
    /// latency is returned — safe because no message can ever arrive (any
    /// horizon is correct), and consistent with [`Noc::min_hop_latency`]'s
    /// same degenerate fallback. (Note this is **not** a claim that some
    /// pair is one hop apart: under `MultiChip { workers_per_node: 1, .. }`
    /// every row minimum is the full inter-node latency.)
    pub fn min_incoming_latency(&self, dst: PartitionId) -> u64 {
        self.min_incoming[dst.0 as usize]
    }

    /// Number of workers attached to the interconnect.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Inject a packet at cycle `now`. A link accepts [`issue_width`]
    /// messages per cycle; beyond that the sender must retry (back-pressure
    /// into the dispatch stage).
    ///
    /// [`issue_width`]: Noc::new
    pub fn send(&mut self, now: u64, pkt: Packet) -> Result<(), NocBusy> {
        let src = pkt.src.0 as usize;
        assert!(
            src < self.n && (pkt.dst.0 as usize) < self.n,
            "packet for unknown worker"
        );
        let (cycle, count) = &mut self.last_send[src];
        if *cycle == now && *count >= self.issue_width {
            self.stats.rejected += 1;
            return Err(NocBusy);
        }
        if *cycle != now {
            *cycle = now;
            *count = 0;
        }
        *count += 1;
        self.stats.sent += 1;
        self.link_stats[pkt.dst.0 as usize].sent += 1;
        // Injected faults: the nth accepted send may vanish in flight (the
        // sender cannot tell — recovering is the worker retry path's job)
        // or pay extra latency. With no schedule installed this is a
        // counter bump only.
        let n = self.sends_seen;
        self.sends_seen += 1;
        if self.faults.drop_for(n) {
            self.stats.dropped += 1;
            return Ok(());
        }
        let mut lat = self.latency(pkt.src, pkt.dst);
        if let Some(extra) = self.faults.delay_for(n) {
            lat += extra;
            self.stats.delayed += 1;
        }
        let dst = pkt.dst.0 as usize;
        self.inbound[dst].push_back((now + lat, pkt));
        let depth = self.inbound[dst].len() as u64;
        let ls = &mut self.link_stats[dst];
        ls.queue_high_water = ls.queue_high_water.max(depth);
        self.stats.total_latency += lat;
        Ok(())
    }

    /// Peek the next packet delivered to `dst` by cycle `now` without
    /// consuming it (the background unit uses this to leave a request in
    /// the channel while its coprocessor input queue is full).
    pub fn peek(&self, now: u64, dst: PartitionId) -> Option<&Packet> {
        match self.inbound[dst.0 as usize].front() {
            Some((ready, pkt)) if *ready <= now => Some(pkt),
            _ => None,
        }
    }

    /// Pop the next packet delivered to `dst` by cycle `now`, if any.
    pub fn poll(&mut self, now: u64, dst: PartitionId) -> Option<Packet> {
        let q = &mut self.inbound[dst.0 as usize];
        match q.front() {
            Some((ready, _)) if *ready <= now => {
                self.stats.delivered += 1;
                self.link_stats[dst.0 as usize].delivered += 1;
                Some(q.pop_front().expect("front checked").1)
            }
            _ => None,
        }
    }

    /// True when no messages are in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.inbound.iter().all(VecDeque::is_empty)
    }

    /// Messages currently in flight (accepted, not yet consumed). Closes
    /// the [`NocStats`] conservation identity
    /// `sent == delivered + dropped + in_flight`.
    pub fn in_flight(&self) -> u64 {
        self.inbound.iter().map(|q| q.len() as u64).sum()
    }

    /// The earliest cycle at which some queued packet becomes (or already
    /// is) visible to `peek`/`poll`, or `None` when every channel is empty.
    ///
    /// Because `peek`/`poll` only examine each destination's queue *front*,
    /// a front that is already deliverable (`ready <= now`) may be consumed
    /// on the next tick — reported as `now + 1`. A front still in flight
    /// becomes visible exactly at its `ready` cycle. Deeper entries cannot
    /// be observed before the front, so the front is the exact bound.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.inbound
            .iter()
            .filter_map(|q| q.front().map(|(ready, _)| (*ready).max(now + 1)))
            .min()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Per-destination link counters, indexed by worker id.
    pub fn link_stats(&self) -> &[LinkStats] {
        &self.link_stats
    }

    /// The configured topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Minimum latency between any two *distinct* workers — the conservative
    /// parallel-simulation **lookahead**: a message sent at cycle `c` cannot
    /// be delivered before `c + min_hop_latency()`, so an epoch of that many
    /// cycles can run every worker independently without missing a delivery.
    ///
    /// The matrix minimum over all ordered pairs; topologies here are
    /// symmetric but nothing requires it. With a single worker there are no
    /// pairs and any epoch length is safe; the one-hop latency is the floor.
    pub fn min_hop_latency(&self) -> u64 {
        self.min_incoming
            .iter()
            .copied()
            .min()
            .unwrap_or(self.hop_latency)
    }

    /// Detach every worker's view of the interconnect into an [`EpochLink`]
    /// for an epoch-parallel run. Each link takes ownership of its inbound
    /// delivery queue; sends and polls are recorded locally and replayed
    /// into the shared stats by [`Noc::merge_epoch`] at each epoch barrier.
    /// [`Noc::absorb_epoch`] puts the queues back when the run ends.
    ///
    /// The per-source issue-width ledger restarts empty, which is exact: a
    /// link admits at most `issue_width` sends per *cycle*, every epoch
    /// round starts at a cycle strictly after any cycle the ledger has seen,
    /// and the merge replay rebuilds the shared ledger from the accepted
    /// sends themselves.
    pub fn begin_epoch(&mut self) -> Vec<EpochLink> {
        (0..self.n)
            .map(|w| EpochLink {
                id: w,
                n: self.n,
                issue_width: self.issue_width,
                queue: std::mem::take(&mut self.inbound[w]),
                staged: Vec::new(),
                polls: Vec::new(),
                depth_start: 0,
                last_send: (u64::MAX, 0),
                rejected: 0,
            })
            .collect()
    }

    /// Merge one epoch round's per-worker traffic back into the shared
    /// interconnect state, replaying the accepted sends **in the exact order
    /// a serial run would have made them** (by cycle, ties broken by source
    /// worker id — the serial tick order within a cycle). Returns the
    /// resulting deliveries grouped per destination, each `(deliver_at,
    /// packet)` strictly beyond `horizon` (the lookahead guarantee), for the
    /// caller to hand to the next round's [`EpochLink::begin_round`].
    pub fn merge_epoch(&mut self, horizon: u64, traffic: Vec<EpochTraffic>) -> Vec<Vec<(u64, Packet)>> {
        assert_eq!(traffic.len(), self.n, "one traffic record per worker");
        let mut out: Vec<Vec<(u64, Packet)>> = (0..self.n).map(|_| Vec::new()).collect();
        // Queue-depth replay events per destination: (cycle, acting worker,
        // +1 push / -1 pop), used to rebuild `queue_high_water` exactly.
        let mut events: Vec<Vec<(u64, usize, i64)>> = (0..self.n).map(|_| Vec::new()).collect();
        let mut depth_start = vec![0u64; self.n];
        let mut staged_all: Vec<(u64, usize, Packet)> = Vec::new();
        for (w, t) in traffic.into_iter().enumerate() {
            debug_assert_eq!(t.src, w, "traffic records must arrive in worker order");
            self.stats.rejected += t.rejected;
            self.stats.delivered += t.polls.len() as u64;
            self.link_stats[w].delivered += t.polls.len() as u64;
            depth_start[w] = t.depth_start;
            for &c in &t.polls {
                events[w].push((c, w, -1));
            }
            for (c, pkt) in t.staged {
                staged_all.push((c, w, pkt));
            }
        }
        // Stable sort: each source's stage list is already cycle-ordered, so
        // sorting by cycle alone leaves same-cycle sends in source-id order —
        // exactly the order serial ticking calls `send` in.
        staged_all.sort_by_key(|&(c, _, _)| c);
        for (c, src, pkt) in staged_all {
            // Same bookkeeping as `send`, minus the issue-width gate: the
            // link already enforced it with an identical per-cycle ledger.
            let (cycle, count) = &mut self.last_send[src];
            if *cycle != c {
                *cycle = c;
                *count = 0;
            }
            *count += 1;
            self.stats.sent += 1;
            self.link_stats[pkt.dst.0 as usize].sent += 1;
            let nth = self.sends_seen;
            self.sends_seen += 1;
            if self.faults.drop_for(nth) {
                self.stats.dropped += 1;
                continue;
            }
            let mut lat = self.latency(pkt.src, pkt.dst);
            if let Some(extra) = self.faults.delay_for(nth) {
                lat += extra;
                self.stats.delayed += 1;
            }
            let deliver_at = c + lat;
            debug_assert!(
                deliver_at > horizon,
                "lookahead violated: send at {c} delivers at {deliver_at} inside horizon {horizon}"
            );
            self.stats.total_latency += lat;
            let dst = pkt.dst.0 as usize;
            events[dst].push((c, src, 1));
            out[dst].push((deliver_at, pkt));
        }
        for (dst, ev) in events.iter_mut().enumerate() {
            // Serial order within a cycle is worker-id order: dst pops during
            // its own tick, sources push during theirs.
            ev.sort_by_key(|&(c, actor, _)| (c, actor));
            let mut depth = depth_start[dst] as i64;
            let ls = &mut self.link_stats[dst];
            for &(_, _, delta) in ev.iter() {
                depth += delta;
                debug_assert!(depth >= 0, "queue depth replay went negative");
                if delta > 0 {
                    ls.queue_high_water = ls.queue_high_water.max(depth as u64);
                }
            }
        }
        out
    }

    /// Re-attach the per-worker queues after the final epoch round. `pending`
    /// is the last [`Noc::merge_epoch`] result that was never handed to a
    /// next round; its deliveries land *behind* whatever is still queued
    /// (they were sent later than anything the link already holds).
    pub fn absorb_epoch(&mut self, links: Vec<EpochLink>, pending: Vec<Vec<(u64, Packet)>>) {
        assert_eq!(links.len(), self.n);
        assert_eq!(pending.len(), self.n);
        for (w, (link, extra)) in links.into_iter().zip(pending).enumerate() {
            debug_assert_eq!(link.id, w, "links must return in worker order");
            let mut q = link.queue;
            q.extend(extra);
            self.inbound[w] = q;
        }
    }
}

/// The worker-facing face of the interconnect: what a `PartitionWorker`
/// may do to it during its own tick. [`Noc`] implements it directly (the
/// serial scheduler); [`EpochLink`] implements it over a detached
/// per-worker queue (the epoch-parallel scheduler).
pub trait Link {
    /// See [`Noc::peek`].
    fn peek(&self, now: u64, dst: PartitionId) -> Option<&Packet>;
    /// See [`Noc::poll`].
    fn poll(&mut self, now: u64, dst: PartitionId) -> Option<Packet>;
    /// See [`Noc::send`].
    fn send(&mut self, now: u64, pkt: Packet) -> Result<(), NocBusy>;
}

impl Link for Noc {
    fn peek(&self, now: u64, dst: PartitionId) -> Option<&Packet> {
        Noc::peek(self, now, dst)
    }
    fn poll(&mut self, now: u64, dst: PartitionId) -> Option<Packet> {
        Noc::poll(self, now, dst)
    }
    fn send(&mut self, now: u64, pkt: Packet) -> Result<(), NocBusy> {
        Noc::send(self, now, pkt)
    }
}

/// One worker's detached view of the interconnect during an epoch round:
/// the worker consumes deliveries from its own queue and stages outbound
/// sends locally, with zero shared state — which is what lets every worker
/// run on its own thread. Created by [`Noc::begin_epoch`]; traffic is
/// reconciled by [`Noc::merge_epoch`] at the barrier.
#[derive(Debug, PartialEq)]
pub struct EpochLink {
    id: usize,
    n: usize,
    issue_width: u32,
    /// This worker's inbound deliveries `(deliver_at, packet)`, FIFO.
    queue: VecDeque<(u64, Packet)>,
    /// Outbound sends this round, `(cycle, packet)`, in send order.
    staged: Vec<(u64, Packet)>,
    /// Cycles at which this worker consumed a delivery this round.
    polls: Vec<u64>,
    /// Queue depth at the start of the round (after deliveries appended).
    depth_start: u64,
    /// Per-cycle issue ledger, same semantics as the shared one.
    last_send: (u64, u32),
    rejected: u64,
}

impl EpochLink {
    /// Start a round: append the deliveries produced by the previous
    /// round's merge (all strictly beyond the previous horizon, hence
    /// behind anything still queued) and reset the round-local traffic log.
    pub fn begin_round(&mut self, deliveries: Vec<(u64, Packet)>) {
        self.queue.extend(deliveries);
        self.depth_start = self.queue.len() as u64;
        self.staged.clear();
        self.polls.clear();
        self.rejected = 0;
    }

    /// End a round: hand the recorded traffic to [`Noc::merge_epoch`].
    pub fn harvest(&mut self) -> EpochTraffic {
        EpochTraffic {
            src: self.id,
            staged: std::mem::take(&mut self.staged),
            polls: std::mem::take(&mut self.polls),
            rejected: std::mem::take(&mut self.rejected),
            depth_start: self.depth_start,
            depth_end: self.queue.len() as u64,
        }
    }

    /// The earliest cycle `> now` at which the queue front becomes (or
    /// already is) deliverable — this worker's slice of [`Noc::next_event`].
    pub fn next_ready(&self, now: u64) -> Option<u64> {
        self.queue.front().map(|(ready, _)| (*ready).max(now + 1))
    }
}

impl Link for EpochLink {
    fn peek(&self, now: u64, dst: PartitionId) -> Option<&Packet> {
        debug_assert_eq!(dst.0 as usize, self.id, "epoch link peeked for another worker");
        match self.queue.front() {
            Some((ready, pkt)) if *ready <= now => Some(pkt),
            _ => None,
        }
    }

    fn poll(&mut self, now: u64, dst: PartitionId) -> Option<Packet> {
        debug_assert_eq!(dst.0 as usize, self.id, "epoch link polled for another worker");
        match self.queue.front() {
            Some((ready, _)) if *ready <= now => {
                self.polls.push(now);
                Some(self.queue.pop_front().expect("front checked").1)
            }
            _ => None,
        }
    }

    fn send(&mut self, now: u64, pkt: Packet) -> Result<(), NocBusy> {
        let src = pkt.src.0 as usize;
        assert!(
            src < self.n && (pkt.dst.0 as usize) < self.n,
            "packet for unknown worker"
        );
        debug_assert_eq!(src, self.id, "epoch link sent from another worker");
        // The per-pair horizon computation excludes `src == dst` arrival
        // bounds on the strength of this invariant: a worker's local
        // requests and results never transit the NoC (the worker glue
        // routes them directly), so nothing a lane sends can wake the lane
        // itself.
        debug_assert_ne!(
            pkt.dst.0 as usize, self.id,
            "workers never send to themselves over the NoC"
        );
        let (cycle, count) = &mut self.last_send;
        if *cycle == now && *count >= self.issue_width {
            self.rejected += 1;
            return Err(NocBusy);
        }
        if *cycle != now {
            *cycle = now;
            *count = 0;
        }
        *count += 1;
        self.staged.push((now, pkt));
        Ok(())
    }
}

/// One worker's traffic log for one epoch round, produced by
/// [`EpochLink::harvest`] and consumed by [`Noc::merge_epoch`].
#[derive(Debug)]
pub struct EpochTraffic {
    src: usize,
    staged: Vec<(u64, Packet)>,
    polls: Vec<u64>,
    rejected: u64,
    depth_start: u64,
    depth_end: u64,
}

impl EpochTraffic {
    /// True when the worker's delivery queue was empty at harvest time —
    /// the epoch scheduler uses this to decide whether a freshly merged
    /// delivery is the worker's next wake-up (a non-empty queue means an
    /// older front head-of-line blocks it, and the worker's own exit hint
    /// already accounts for that front).
    pub fn queue_drained(&self) -> bool {
        self.depth_end == 0
    }
}

/// One subtree's worth of epoch-round traffic, shaped for the parallel
/// **hierarchical merge**: every field is kept in the exact serial replay
/// order, and [`StagedBatch::merge`] combines two batches with an
/// order-preserving two-pointer merge — so the content of the combining
/// tree's root is deterministic no matter which thread performs which
/// merge, and equals what a serial pass over the lanes would have built.
#[derive(Debug, PartialEq)]
pub struct StagedBatch {
    /// Accepted sends `(cycle, src, packet)`, sorted by `(cycle, src)` —
    /// the serial send order (workers tick in id order within a cycle).
    sends: Vec<(u64, u32, Packet)>,
    /// Delivery consumptions `(cycle, dst)`, sorted by `(cycle, dst)` —
    /// the queue-depth *pop* events for high-water replay.
    polls: Vec<(u64, u32)>,
    /// Back-pressure rejections (an order-free sum).
    rejected: u64,
}

impl StagedBatch {
    /// The identity element of [`StagedBatch::merge`] (used to pad the
    /// combining tree to a power-of-two leaf count).
    pub fn empty() -> Self {
        StagedBatch {
            sends: Vec::new(),
            polls: Vec::new(),
            rejected: 0,
        }
    }

    /// Convert one lane's round traffic into a single-leaf batch. The
    /// lane's stage list is chronologically ordered with a constant source,
    /// so it is already `(cycle, src)`-sorted; likewise its polls.
    pub fn from_traffic(t: EpochTraffic) -> Self {
        let src = t.src as u32;
        StagedBatch {
            sends: t.staged.into_iter().map(|(c, p)| (c, src, p)).collect(),
            polls: t.polls.into_iter().map(|c| (c, src)).collect(),
            rejected: t.rejected,
        }
    }

    /// Deterministic pairwise combine: order-preserving merges of the two
    /// sorted sequences. Called concurrently from whichever thread
    /// completes a combining-tree node second; associativity of sorted
    /// merge makes the root independent of execution interleaving.
    pub fn merge(a: Self, b: Self) -> Self {
        fn merge_by<T, K: Ord>(a: Vec<T>, b: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
            loop {
                match (ia.peek(), ib.peek()) {
                    (Some(x), Some(y)) => {
                        // `<=` keeps the left subtree first on ties — the
                        // stable order a serial concat-then-sort would give.
                        if key(x) <= key(y) {
                            out.push(ia.next().expect("peeked"));
                        } else {
                            out.push(ib.next().expect("peeked"));
                        }
                    }
                    (Some(_), None) => out.push(ia.next().expect("peeked")),
                    (None, Some(_)) => out.push(ib.next().expect("peeked")),
                    (None, None) => break,
                }
            }
            out
        }
        StagedBatch {
            sends: merge_by(a.sends, b.sends, |&(c, s, _)| (c, s)),
            polls: merge_by(a.polls, b.polls, |&(c, d)| (c, d)),
            rejected: a.rejected + b.rejected,
        }
    }

    /// True when the batch carries no traffic at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.polls.is_empty() && self.rejected == 0
    }
}

/// Cross-round reconciliation state for the per-pair-lookahead scheduler.
///
/// With one global horizon every round's sends can be replayed at its own
/// barrier: the next round starts strictly beyond the horizon, so no later
/// send can precede them in serial order. Per-lane horizons break that — a
/// lane with a short horizon may, in a *later* round, stage sends that
/// serially precede sends a far-ahead lane staged *earlier*. The merger
/// therefore buffers staged sends across rounds and only **commits** the
/// prefix strictly below a caller-supplied bound (the GVT — a proven lower
/// bound on every cycle any lane can still act at), in `(cycle, src)`
/// order. That keeps the three order-sensitive artefacts exact:
/// fault-injection ordinals (`sends_seen`), the per-source issue ledger,
/// and per-destination `queue_high_water` replay. Order-free sums
/// (delivered/rejected counts) are applied as traffic arrives.
#[derive(Debug)]
pub struct EpochMerger {
    n: usize,
    /// Uncommitted sends, globally `(cycle, src)`-sorted.
    staged: Vec<(u64, u32, Packet)>,
    /// Per-destination queue-depth events `(cycle, actor, ±1)` not yet
    /// applied to the persistent depth below.
    events: Vec<Vec<(u64, u32, i64)>>,
    /// Mirror of the serial `inbound` queue depth at the committed
    /// frontier, per destination.
    depth: Vec<i64>,
    /// Exclusive upper bound of cycles already committed — commits must be
    /// monotone (asserted) for the ordinal replay to be exact.
    committed_below: u64,
}

impl EpochMerger {
    /// Capture the reconciliation baseline. Must be called **before**
    /// [`Noc::begin_epoch`] detaches the queues: the persistent depth
    /// mirror starts from the live per-destination queue lengths.
    pub fn new(noc: &Noc) -> Self {
        EpochMerger {
            n: noc.n,
            staged: Vec::new(),
            events: (0..noc.n).map(|_| Vec::new()).collect(),
            depth: noc.inbound.iter().map(|q| q.len() as i64).collect(),
            committed_below: 0,
        }
    }

    /// Fold one round's combined traffic in: apply the order-free sums to
    /// the shared stats immediately, buffer the depth pop events, and merge
    /// the staged sends into the uncommitted buffer (two sorted sequences —
    /// rounds may interleave in cycle order under per-lane horizons).
    pub fn absorb(&mut self, noc: &mut Noc, batch: StagedBatch) {
        noc.stats.rejected += batch.rejected;
        for &(c, dst) in &batch.polls {
            noc.stats.delivered += 1;
            noc.link_stats[dst as usize].delivered += 1;
            self.events[dst as usize].push((c, dst, -1));
        }
        if self.staged.is_empty() {
            self.staged = batch.sends;
        } else if !batch.sends.is_empty() {
            let old = std::mem::take(&mut self.staged);
            self.staged = StagedBatch {
                sends: old,
                polls: Vec::new(),
                rejected: 0,
            }
            .merge_sends(batch.sends);
        }
    }

    /// Earliest cycle at which an uncommitted staged send could reach each
    /// destination (`send cycle + min pair latency`) — a conservative floor
    /// for the per-lane horizon computation. Injected drops make a send
    /// never arrive and delays make it arrive later; both directions are
    /// safe for a lower bound.
    pub fn arrival_floors(&self, noc: &Noc) -> Vec<Option<u64>> {
        let mut floors: Vec<Option<u64>> = vec![None; self.n];
        for &(c, src, ref pkt) in &self.staged {
            let dst = pkt.dst.0 as usize;
            let arrive = c + noc.min_latency(PartitionId(src as u16), pkt.dst);
            floors[dst] = Some(floors[dst].map_or(arrive, |f: u64| f.min(arrive)));
        }
        floors
    }

    /// Commit every staged send with `cycle < bound` (`None` commits all —
    /// the end-of-epoch flush) in `(cycle, src)` order, replaying the exact
    /// serial bookkeeping minus the issue-width gate (the lane's own ledger
    /// already enforced it): shared per-source ledger, `sends_seen` fault
    /// ordinals, drop/delay faults, latency stats, and per-destination
    /// queue-depth/high-water replay. Returns the resulting deliveries per
    /// destination (each `(deliver_at, packet)`, in send order — the FIFO
    /// order of the serial channel) and the number of sends committed.
    pub fn commit(
        &mut self,
        noc: &mut Noc,
        bound: Option<u64>,
    ) -> (Vec<Vec<(u64, Packet)>>, usize) {
        if let Some(b) = bound {
            debug_assert!(
                b >= self.committed_below,
                "commit bound moved backwards: {b} < {}",
                self.committed_below
            );
        }
        let cut = match bound {
            Some(b) => self.staged.partition_point(|&(c, _, _)| c < b),
            None => self.staged.len(),
        };
        let mut out: Vec<Vec<(u64, Packet)>> = (0..self.n).map(|_| Vec::new()).collect();
        for (c, src, pkt) in self.staged.drain(..cut) {
            debug_assert!(
                c >= self.committed_below,
                "staged send at {c} precedes the committed frontier {}",
                self.committed_below
            );
            let src = src as usize;
            let (cycle, count) = &mut noc.last_send[src];
            if *cycle != c {
                *cycle = c;
                *count = 0;
            }
            *count += 1;
            noc.stats.sent += 1;
            noc.link_stats[pkt.dst.0 as usize].sent += 1;
            let nth = noc.sends_seen;
            noc.sends_seen += 1;
            if noc.faults.drop_for(nth) {
                noc.stats.dropped += 1;
                continue;
            }
            let mut lat = noc.latency(pkt.src, pkt.dst);
            if let Some(extra) = noc.faults.delay_for(nth) {
                lat += extra;
                noc.stats.delayed += 1;
            }
            noc.stats.total_latency += lat;
            let dst = pkt.dst.0 as usize;
            self.events[dst].push((c, src as u32, 1));
            out[dst].push((c + lat, pkt));
        }
        let committed = cut;
        // Apply the depth events now safely ordered: every event below the
        // bound is in the buffer (all pops at executed cycles were
        // reported; all pushes below the bound were committed above), and
        // no future event can land below it.
        for (dst, buf) in self.events.iter_mut().enumerate() {
            let taken = std::mem::take(buf);
            let (mut apply, keep): (Vec<_>, Vec<_>) = taken
                .into_iter()
                .partition(|&(c, _, _)| bound.is_none_or(|b| c < b));
            *buf = keep;
            if apply.is_empty() {
                continue;
            }
            // Serial order within a cycle is worker-id order: dst pops
            // during its own tick, sources push during theirs.
            apply.sort_by_key(|&(c, actor, _)| (c, actor));
            let depth = &mut self.depth[dst];
            let ls = &mut noc.link_stats[dst];
            for (_, _, delta) in apply {
                *depth += delta;
                debug_assert!(*depth >= 0, "queue depth replay went negative");
                if delta > 0 {
                    ls.queue_high_water = ls.queue_high_water.max(*depth as u64);
                }
            }
        }
        if let Some(b) = bound {
            self.committed_below = b;
        }
        (out, committed)
    }

    /// True when nothing is left to reconcile — the end-of-epoch audit.
    pub fn is_drained(&self) -> bool {
        self.staged.is_empty() && self.events.iter().all(Vec::is_empty)
    }
}

impl StagedBatch {
    /// Internal helper: merge another sorted send list into this batch's.
    fn merge_sends(self, other: Vec<(u64, u32, Packet)>) -> Vec<(u64, u32, Packet)> {
        StagedBatch::merge(
            self,
            StagedBatch {
                sends: other,
                polls: Vec::new(),
                rejected: 0,
            },
        )
        .sends
    }
}

// ---------------------------------------------------------------------------
// Wire codecs (fleet transport)
// ---------------------------------------------------------------------------
//
// The multi-process fleet simulator ships interconnect state between the
// coordinator and its chip processes: detached `EpochLink`s travel to the
// chip owning the lane and back at phase boundaries, and each round's
// `StagedBatch` rides the chip's reply. The codecs live here because the
// fields are deliberately private — process boundaries don't get to widen
// the API the in-process scheduler sees.

use bionicdb_fpga::wire::{Reader, Wire};

impl Wire for Payload {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Request(rq) => {
                0u8.put(out);
                rq.put(out);
            }
            Payload::Response(rs) => {
                1u8.put(out);
                rs.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Self {
        match u8::get(r) {
            0 => Payload::Request(r.get()),
            1 => Payload::Response(r.get()),
            t => panic!("bad Payload tag {t}"),
        }
    }
}

impl Wire for Packet {
    fn put(&self, out: &mut Vec<u8>) {
        self.src.put(out);
        self.dst.put(out);
        self.seq.put(out);
        self.payload.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        Packet {
            src: r.get(),
            dst: r.get(),
            seq: r.get(),
            payload: r.get(),
        }
    }
}

impl Wire for EpochLink {
    fn put(&self, out: &mut Vec<u8>) {
        self.id.put(out);
        self.n.put(out);
        self.issue_width.put(out);
        (self.queue.len() as u64).put(out);
        for e in &self.queue {
            e.put(out);
        }
        self.staged.put(out);
        self.polls.put(out);
        self.depth_start.put(out);
        self.last_send.put(out);
        self.rejected.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        EpochLink {
            id: r.get(),
            n: r.get(),
            issue_width: r.get(),
            queue: {
                let n = u64::get(r) as usize;
                (0..n).map(|_| r.get()).collect()
            },
            staged: r.get(),
            polls: r.get(),
            depth_start: r.get(),
            last_send: r.get(),
            rejected: r.get(),
        }
    }
}

impl Wire for StagedBatch {
    fn put(&self, out: &mut Vec<u8>) {
        self.sends.put(out);
        self.polls.put(out);
        self.rejected.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Self {
        StagedBatch {
            sends: r.get(),
            polls: r.get(),
            rejected: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionicdb_softcore::catalogue::TableId;
    use bionicdb_softcore::request::{CpSlot, DbOp};

    fn req_pkt(src: u16, dst: u16) -> Packet {
        Packet {
            src: PartitionId(src),
            dst: PartitionId(dst),
            seq: 0,
            payload: Payload::Request(DbRequest {
                op: DbOp::Search,
                table: TableId(0),
                key_addr: 0,
                payload_addr: 0,
                scan_count: 0,
                out_addr: 0,
                ts: 1,
                cp: CpSlot {
                    worker: PartitionId(src),
                    index: 0,
                },
                home: PartitionId(dst),
                batch_group: 0,
            }),
        }
    }

    #[test]
    fn crossbar_delivers_after_hop_latency() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(10, req_pkt(0, 2)).unwrap();
        assert!(
            noc.poll(12, PartitionId(2)).is_none(),
            "not before 3 cycles"
        );
        let pkt = noc.poll(13, PartitionId(2)).expect("delivered at 13");
        assert_eq!(pkt.src, PartitionId(0));
        assert!(noc.is_idle());
    }

    #[test]
    fn request_response_pair_is_six_cycles() {
        // Paper Table 3: 48 ns = 6 cycles for a request/response pair.
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.send(0, req_pkt(0, 1)).unwrap();
        let t_req = (0..100)
            .find(|&t| noc.poll(t, PartitionId(1)).is_some())
            .unwrap();
        noc.send(t_req, req_pkt(1, 0)).unwrap();
        let t_resp = (0..100)
            .find(|&t| noc.poll(t, PartitionId(0)).is_some())
            .unwrap();
        assert_eq!(t_resp, 6);
    }

    #[test]
    fn link_issue_width_backpressures() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(5, req_pkt(0, 1)).unwrap();
        assert_eq!(noc.send(5, req_pkt(0, 2)), Err(NocBusy));
        assert!(noc.send(6, req_pkt(0, 2)).is_ok());
        assert_eq!(noc.stats().rejected, 1);
        assert_eq!(noc.stats().sent, 2, "rejected sends are not counted sent");
    }

    #[test]
    fn injected_drop_vanishes_in_flight() {
        use bionicdb_fpga::fault::FaultPlan;
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.set_faults(FaultPlan::none().drop_nth_send(1).noc);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(0, 1)).unwrap(); // dropped
        noc.send(2, req_pkt(0, 1)).unwrap();
        let mut got = 0;
        for t in 0..20 {
            while noc.poll(t, PartitionId(1)).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 2, "the dropped packet never arrives");
        let s = noc.stats();
        assert_eq!((s.sent, s.delivered, s.dropped, s.rejected), (3, 2, 1, 0));
        assert_eq!(s.sent, s.delivered + s.dropped + noc.in_flight());
    }

    #[test]
    fn injected_delay_holds_the_channel_fifo() {
        use bionicdb_fpga::fault::FaultPlan;
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.set_faults(FaultPlan::none().delay_nth_send(0, 10).noc);
        noc.send(0, req_pkt(0, 1)).unwrap(); // ready at 13 instead of 3
        noc.send(1, req_pkt(0, 1)).unwrap(); // ready at 4, but behind
        assert!(noc.poll(4, PartitionId(1)).is_none(), "head-of-line blocked");
        assert!(noc.poll(13, PartitionId(1)).is_some());
        assert!(noc.poll(13, PartitionId(1)).is_some());
        assert_eq!(noc.stats().delayed, 1);
        assert_eq!(noc.in_flight(), 0);
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        let mut a = req_pkt(0, 1);
        let mut b = req_pkt(0, 1);
        if let Payload::Request(r) = &mut a.payload {
            r.ts = 111;
        }
        if let Payload::Request(r) = &mut b.payload {
            r.ts = 222;
        }
        noc.send(0, a).unwrap();
        noc.send(1, b).unwrap();
        let p1 = noc.poll(10, PartitionId(1)).unwrap();
        let p2 = noc.poll(10, PartitionId(1)).unwrap();
        match (p1.payload, p2.payload) {
            (Payload::Request(r1), Payload::Request(r2)) => {
                assert_eq!((r1.ts, r2.ts), (111, 222));
            }
            other => panic!("unexpected payloads {other:?}"),
        }
    }

    #[test]
    fn ring_distance_scales_latency() {
        let noc = Noc::new(Topology::Ring, 8, 3);
        assert_eq!(noc.hops(PartitionId(0), PartitionId(1)), 1);
        assert_eq!(noc.hops(PartitionId(0), PartitionId(4)), 4);
        assert_eq!(noc.hops(PartitionId(0), PartitionId(7)), 1, "wraps around");
        assert_eq!(noc.latency(PartitionId(1), PartitionId(5)), 12);
        let xbar = Noc::new(Topology::Crossbar, 8, 3);
        assert_eq!(xbar.latency(PartitionId(1), PartitionId(5)), 3);
    }

    #[test]
    fn multichip_groups_pay_internode_latency() {
        let noc = Noc::new(
            Topology::MultiChip {
                workers_per_node: 4,
                inter_node_hops: 25,
            },
            8,
            3,
        );
        // Same node: one hop.
        assert_eq!(noc.latency(PartitionId(0), PartitionId(3)), 3);
        assert_eq!(noc.latency(PartitionId(5), PartitionId(7)), 3);
        // Cross node: the serial-link cost.
        assert_eq!(noc.latency(PartitionId(0), PartitionId(4)), 75);
        assert_eq!(noc.latency(PartitionId(7), PartitionId(1)), 75);
    }

    #[test]
    fn mean_latency_statistic() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(1, 2)).unwrap();
        let s = noc.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.total_latency, 6);
    }

    #[test]
    fn link_stats_track_per_destination_traffic() {
        let mut noc = Noc::new(Topology::Crossbar, 4, 3);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(2, 1)).unwrap();
        noc.send(2, req_pkt(0, 3)).unwrap();
        assert_eq!(noc.link_stats()[1].sent, 2);
        assert_eq!(noc.link_stats()[1].queue_high_water, 2);
        assert_eq!(noc.link_stats()[3].sent, 1);
        for t in 0..10 {
            while noc.poll(t, PartitionId(1)).is_some() {}
        }
        assert_eq!(noc.link_stats()[1].delivered, 2);
        assert_eq!(noc.link_stats()[0], LinkStats::default());
    }

    #[test]
    #[should_panic(expected = "unknown worker")]
    fn out_of_range_destination_panics() {
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        let _ = noc.send(0, req_pkt(0, 5));
    }

    #[test]
    fn mean_latency_guarded_when_all_sends_dropped() {
        use bionicdb_fpga::fault::FaultPlan;
        let mut noc = Noc::new(Topology::Crossbar, 2, 3);
        noc.set_faults(FaultPlan::none().drop_nth_send(0).drop_nth_send(1).noc);
        noc.send(0, req_pkt(0, 1)).unwrap();
        noc.send(1, req_pkt(0, 1)).unwrap();
        let s = noc.stats();
        assert_eq!((s.sent, s.dropped), (2, 2));
        assert_eq!(s.mean_latency(), 0.0, "sent == dropped must not divide by zero");
        // And the healthy path still averages correctly.
        noc.send(2, req_pkt(0, 1)).unwrap();
        assert_eq!(noc.stats().mean_latency(), 3.0);
    }

    #[test]
    fn min_hop_latency_per_topology() {
        assert_eq!(Noc::new(Topology::Crossbar, 4, 3).min_hop_latency(), 3);
        // Ring: adjacent workers are one hop apart.
        assert_eq!(Noc::new(Topology::Ring, 8, 3).min_hop_latency(), 3);
        assert_eq!(Noc::new(Topology::Ring, 3, 5).min_hop_latency(), 5);
        // Multi-chip with one worker per node: every pair pays the link.
        let mc = Noc::new(
            Topology::MultiChip {
                workers_per_node: 1,
                inter_node_hops: 25,
            },
            4,
            3,
        );
        assert_eq!(mc.min_hop_latency(), 75);
        // Multi-chip with co-resident workers: the intra-node hop wins.
        let mc2 = Noc::new(
            Topology::MultiChip {
                workers_per_node: 2,
                inter_node_hops: 25,
            },
            4,
            3,
        );
        assert_eq!(mc2.min_hop_latency(), 3);
        // Degenerate single worker: no pairs; the hop latency is the floor.
        assert_eq!(Noc::new(Topology::Crossbar, 1, 3).min_hop_latency(), 3);
    }

    /// Epoch round-trip: the same traffic pushed through detached links +
    /// merge must leave the Noc in exactly the state direct sends produce.
    #[test]
    fn epoch_links_replay_bit_identical() {
        let run = |epoch: bool| -> (NocStats, Vec<LinkStats>, Vec<Option<Packet>>) {
            let mut noc = Noc::new(Topology::Crossbar, 3, 3);
            if epoch {
                let mut links = noc.begin_epoch();
                for l in &mut links {
                    l.begin_round(Vec::new());
                }
                // Worker 0 sends twice at cycle 5 (second rejected), worker
                // 1 sends at 5 and 6.
                Link::send(&mut links[0], 5, req_pkt(0, 2)).unwrap();
                assert_eq!(Link::send(&mut links[0], 5, req_pkt(0, 1)), Err(NocBusy));
                Link::send(&mut links[1], 5, req_pkt(1, 2)).unwrap();
                Link::send(&mut links[1], 6, req_pkt(1, 0)).unwrap();
                let traffic = links.iter_mut().map(|l| l.harvest()).collect();
                let deliveries = noc.merge_epoch(6, traffic);
                noc.absorb_epoch(links, deliveries);
            } else {
                noc.send(5, req_pkt(0, 2)).unwrap();
                assert_eq!(noc.send(5, req_pkt(0, 1)), Err(NocBusy));
                noc.send(5, req_pkt(1, 2)).unwrap();
                noc.send(6, req_pkt(1, 0)).unwrap();
            }
            let drained: Vec<Option<Packet>> = (0..3)
                .map(|w| noc.poll(100, PartitionId(w)))
                .collect();
            (noc.stats(), noc.link_stats().to_vec(), drained)
        };
        let (serial, epoch) = (run(false), run(true));
        assert_eq!(serial.0, epoch.0, "NocStats diverged");
        assert_eq!(serial.1, epoch.1, "LinkStats diverged");
        assert_eq!(serial.2, epoch.2, "delivered packets diverged");
    }

    use proptest::prelude::*;

    proptest! {
        /// The lookahead caches (`pair_latency` matrix, `min_incoming` row
        /// minima, `min_hop_latency` global minimum) are built once at
        /// construction and then trusted by the epoch scheduler's horizon
        /// math. Pin them to freshly recomputed topology math across random
        /// configurations of every topology family, so the cache and the
        /// definition can never drift apart again (the `min_incoming`
        /// doc/definition mismatch this closes was exactly such a drift).
        #[test]
        fn lookahead_caches_match_recomputed_topology_math(
            which in 0usize..4,
            n in 1usize..12,
            raw_hop in 0u64..8,
            per in 1usize..5,
            inter in 0u64..60,
        ) {
            let topology = match which {
                0 => Topology::Crossbar,
                1 => Topology::Ring,
                2 => Topology::MultiChip {
                    workers_per_node: per,
                    inter_node_hops: inter,
                },
                _ => Topology::Fleet {
                    workers_per_chip: per,
                    neighbor_hops: inter,
                },
            };
            let noc = Noc::new(topology, n, raw_hop);
            // `Noc::new` clamps a zero hop latency to one cycle.
            let hop = raw_hop.max(1);
            let mut global_min = u64::MAX;
            for dst in 0..n {
                let mut row_min = u64::MAX;
                for src in 0..n {
                    let (s, d) = (PartitionId(src as u16), PartitionId(dst as u16));
                    let fresh = topology.hops_between(n, src, dst) * hop;
                    prop_assert_eq!(noc.latency(s, d), fresh, "latency {:?}", topology);
                    prop_assert_eq!(noc.min_latency(s, d), fresh, "cache {:?}", topology);
                    if src != dst {
                        row_min = row_min.min(fresh);
                    }
                }
                // A single-worker interconnect has no incoming pairs at
                // all; the documented fallback is the one-hop latency.
                let expect = if n == 1 { hop } else { row_min };
                prop_assert_eq!(
                    noc.min_incoming_latency(PartitionId(dst as u16)),
                    expect,
                    "min_incoming {:?}",
                    topology
                );
                global_min = global_min.min(expect);
            }
            prop_assert_eq!(noc.min_hop_latency(), global_min, "global {:?}", topology);
        }
    }

    /// Fleet wire codecs round-trip the exact structures the chip processes
    /// exchange: packets, detached epoch links (with queued deliveries,
    /// staged sends, polls and issue-ledger state), and merged batches.
    #[test]
    fn wire_codecs_round_trip_epoch_state() {
        use bionicdb_fpga::wire::{decode, encode};

        let pkt = req_pkt(1, 2);
        assert_eq!(decode::<Packet>(&encode(&pkt)), pkt);
        let resp = Packet {
            src: PartitionId(2),
            dst: PartitionId(1),
            seq: 7,
            payload: Payload::Response(DbResponse {
                cp: CpSlot {
                    worker: PartitionId(1),
                    index: 3,
                },
                value: -9,
            }),
        };
        assert_eq!(decode::<Packet>(&encode(&resp)), resp);

        // Populate links with real traffic so queues, staged sends, polls
        // and the issue ledger are all non-trivial.
        let mut noc = Noc::new(Topology::Ring, 3, 3);
        noc.send(1, req_pkt(2, 0)).unwrap();
        let mut links = noc.begin_epoch();
        for l in &mut links {
            l.begin_round(Vec::new());
        }
        Link::send(&mut links[0], 5, req_pkt(0, 2)).unwrap();
        assert_eq!(Link::send(&mut links[0], 5, req_pkt(0, 1)), Err(NocBusy));
        Link::poll(&mut links[1], 6, PartitionId(1));
        for l in &links {
            assert_eq!(&decode::<EpochLink>(&encode(l)), l);
        }
        let batch = links
            .iter_mut()
            .map(|l| StagedBatch::from_traffic(l.harvest()))
            .fold(StagedBatch::empty(), StagedBatch::merge);
        assert_eq!(decode::<StagedBatch>(&encode(&batch)), batch);
    }
}
