//! Umbrella crate for the BionicDB reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; the implementation lives in the workspace crates:
//!
//! * [`bionicdb`] — the assembled machine and client API;
//! * [`bionicdb_fpga`] — the cycle-level FPGA fabric substrate;
//! * [`bionicdb_softcore`] — ISA, assembler, catalogue, execution engine;
//! * [`bionicdb_coproc`] — the pipelined hash and skiplist index
//!   coprocessor;
//! * [`bionicdb_noc`] — on-chip message-passing channels;
//! * [`bionicdb_cpu_model`] — the Xeon cache-hierarchy timing model used to
//!   time the software baseline;
//! * [`bionicdb_silo`] — the Silo-style software OLTP baseline;
//! * [`bionicdb_workloads`] — YCSB / TPC-C / KV generators and drivers;
//! * [`bionicdb_power`] — resource-utilization and power models.

pub use bionicdb;
pub use bionicdb_coproc;
pub use bionicdb_cpu_model;
pub use bionicdb_fpga;
pub use bionicdb_noc;
pub use bionicdb_power;
pub use bionicdb_silo;
pub use bionicdb_softcore;
pub use bionicdb_workloads;
