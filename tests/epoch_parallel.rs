//! Epoch-parallel scheduler equivalence tests.
//!
//! `Machine::set_sim_threads(n)` with `n > 1` runs each partition worker
//! (softcore + coprocessor + DRAM bank + partition tables) on its own OS
//! thread inside epochs bounded by the NoC lookahead
//! (`Noc::min_hop_latency`). The contract is the same as fast-forward's,
//! one level stronger: the parallel run must be *bit-for-bit identical* to
//! strict serial ticking — identical final cycle, identical DRAM image,
//! identical statistics on every component, and byte-identical
//! `MachineReport::to_json()` output — for ANY thread count, on any
//! workload, including runs that crash mid-flight under a `FaultPlan`.
//!
//! Every test here runs the same seeded workload under strict serial
//! stepping, serial fast-forward, and epoch-parallel at 2 and 4 threads,
//! and compares whole-machine snapshots plus raw report JSON bytes.

use bionicdb::worker::WorkerStats;
use bionicdb::{BionicConfig, FaultPlan, LookaheadMode, Machine, MachineReport, Topology};
use bionicdb_coproc::CoprocStats;
use bionicdb_fpga::dram::DramStats;
use bionicdb_noc::NocStats;
use bionicdb_softcore::SoftcoreStats;
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind};
use bionicdb_workloads::{StdWorkload, TpccSpec, YcsbSpec};
use proptest::prelude::*;

/// How a run is scheduled. All modes must be observationally identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Strict single-cycle serial ticking.
    Strict,
    /// Serial fast-forward (PR 1 scheduler).
    Fast,
    /// Epoch-parallel with this many worker threads, per-pair (matrix)
    /// lookahead — the default scheduler.
    Par(usize),
    /// Epoch-parallel with this many worker threads, global-minimum
    /// lookahead — the PR-4 baseline `parcheck` diffs against.
    ParGlobal(usize),
}

fn apply(m: &mut Machine, mode: Mode) {
    match mode {
        Mode::Strict => m.set_fast_forward(false),
        Mode::Fast => m.set_fast_forward(true),
        Mode::Par(n) => {
            m.set_fast_forward(true);
            m.set_sim_threads(n);
            m.set_lookahead_mode(LookaheadMode::Matrix);
        }
        Mode::ParGlobal(n) => {
            m.set_fast_forward(true);
            m.set_sim_threads(n);
            m.set_lookahead_mode(LookaheadMode::Global);
        }
    }
}

/// Everything observable about a machine after a run, plus the raw report
/// JSON bytes (the artifact `scripts/check.sh parcheck` diffs).
#[derive(Debug, PartialEq)]
struct Snapshot {
    now: u64,
    crashed: bool,
    machine: bionicdb::MachineStats,
    dram: DramStats,
    noc: NocStats,
    dram_image: u64,
    workers: Vec<(SoftcoreStats, CoprocStats, WorkerStats)>,
    report: MachineReport,
    json: String,
}

fn snapshot(m: &Machine) -> Snapshot {
    let report = m.report();
    let json = report.to_json();
    Snapshot {
        now: m.now(),
        crashed: m.is_crashed(),
        machine: m.stats(),
        dram: m.dram_stats(),
        noc: m.noc().stats(),
        dram_image: m.dram().image_digest(),
        workers: (0..m.num_workers())
            .map(|w| {
                let pw = m.worker(w);
                (pw.softcore.stats(), pw.coproc.stats(), pw.stats())
            })
            .collect(),
        report,
        json,
    }
}

/// Assert two snapshots are bit-identical, with targeted messages for the
/// most diagnostic fields before the blanket comparison.
fn assert_identical(base: &Snapshot, other: &Snapshot, label: &str) {
    assert_eq!(
        base.now, other.now,
        "{label}: cycle counts diverge (base={}, other={})",
        base.now, other.now
    );
    assert_eq!(
        base.dram_image, other.dram_image,
        "{label}: DRAM images diverge"
    );
    assert_eq!(base.json, other.json, "{label}: report JSON bytes diverge");
    assert_eq!(base, other, "{label}: snapshots diverge");
}

/// Run the same seeded YCSB wave under a given mode.
fn ycsb_run(
    cfg: BionicConfig,
    spec: YcsbSpec,
    kinds: &[YcsbKind],
    txns_per_worker: usize,
    plan: Option<FaultPlan>,
    seed: u64,
    mode: Mode,
) -> Snapshot {
    let mut y = YcsbBionic::build(cfg, spec, 4);
    apply(&mut y.machine, mode);
    if let Some(p) = plan {
        y.machine.set_fault_plan(p);
    }
    let workers = y.machine.num_workers();
    let size = kinds
        .iter()
        .map(|&k| y.block_size(k))
        .max()
        .expect("at least one kind");
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut rng = YcsbBionic::rng(seed);
    for (w, pool) in pools.iter_mut().enumerate() {
        for i in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, kinds[i % kinds.len()], &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    snapshot(&y.machine)
}

fn ycsb_all_modes(
    cfg: BionicConfig,
    spec: YcsbSpec,
    kinds: &[YcsbKind],
    txns_per_worker: usize,
    plan: Option<FaultPlan>,
    seed: u64,
    label: &str,
) -> Snapshot {
    let strict = ycsb_run(
        cfg.clone(),
        spec.clone(),
        kinds,
        txns_per_worker,
        plan.clone(),
        seed,
        Mode::Strict,
    );
    for mode in [Mode::Fast, Mode::Par(2), Mode::Par(4)] {
        let other = ycsb_run(
            cfg.clone(),
            spec.clone(),
            kinds,
            txns_per_worker,
            plan.clone(),
            seed,
            mode,
        );
        assert_identical(&strict, &other, &format!("{label} [{mode:?}]"));
    }
    strict
}

/// Crossbar topology: the minimum-lookahead case (L = hop latency).
#[test]
fn ycsb_crossbar_parallel_equivalence() {
    let strict = ycsb_all_modes(
        BionicConfig::small(4),
        YcsbSpec::tiny(),
        &[YcsbKind::ReadLocal, YcsbKind::UpdateLocal, YcsbKind::Scan],
        16,
        None,
        0xEA57,
        "ycsb crossbar",
    );
    assert!(strict.machine.committed > 0, "workload must commit");
}

/// Multisite: four workers on two chips, 75% remote — cross-worker NoC
/// traffic is what the epoch barrier actually has to get right.
#[test]
fn multisite_parallel_equivalence() {
    let cfg = BionicConfig {
        topology: Topology::MultiChip {
            workers_per_node: 2,
            inter_node_hops: 8,
        },
        ..BionicConfig::small(4)
    };
    let spec = YcsbSpec {
        remote_fraction: 0.75,
        ..YcsbSpec::tiny()
    };
    let strict = ycsb_all_modes(
        cfg,
        spec,
        &[YcsbKind::ReadHomed],
        24,
        None,
        0x3317E,
        "multisite",
    );
    assert!(strict.machine.committed > 0, "workload must commit");
    assert!(
        strict.workers.iter().any(|w| w.2.remote_requests > 0),
        "multisite run must actually go remote"
    );
}

/// Thread counts beyond the worker count must clamp, not diverge or hang.
#[test]
fn more_threads_than_workers_is_identical() {
    let strict = ycsb_run(
        BionicConfig::small(2),
        YcsbSpec::tiny(),
        &[YcsbKind::ReadLocal, YcsbKind::UpdateLocal],
        12,
        None,
        0x0DD,
        Mode::Strict,
    );
    let par = ycsb_run(
        BionicConfig::small(2),
        YcsbSpec::tiny(),
        &[YcsbKind::ReadLocal, YcsbKind::UpdateLocal],
        12,
        None,
        0x0DD,
        Mode::Par(16),
    );
    assert_identical(&strict, &par, "16 threads / 2 workers");
}

/// TPC-C NewOrder/Payment mix across four partitions.
#[test]
fn tpcc_parallel_equivalence() {
    use bionicdb_workloads::tpcc::TpccBionic;

    let run = |mode: Mode| -> Snapshot {
        let mut sys = TpccBionic::build(BionicConfig::small(4), TpccSpec::tiny());
        apply(&mut sys.machine, mode);
        let workers = sys.machine.num_workers();
        let mut rng = YcsbBionic::rng(0x7FCC);
        for w in 0..workers {
            for i in 0..12 {
                if i % 2 == 0 {
                    let blk = sys
                        .machine
                        .alloc_block(w, TpccBionic::neworder_block_size());
                    sys.submit_neworder(w, blk, &mut rng);
                } else {
                    let blk = sys.machine.alloc_block(w, TpccBionic::payment_block_size());
                    sys.submit_payment(w, blk, &mut rng);
                }
            }
        }
        sys.machine.run_to_quiescence();
        snapshot(&sys.machine)
    };

    let strict = run(Mode::Strict);
    assert!(strict.machine.committed > 0, "workload must commit");
    for mode in [Mode::Fast, Mode::Par(2), Mode::Par(4)] {
        assert_identical(&strict, &run(mode), &format!("tpcc [{mode:?}]"));
    }
}

/// NoC drops/delays plus DRAM transients under retry glue: the fault replay
/// (per-link ordinals, retransmit timers) must survive the epoch split.
#[test]
fn faulted_parallel_equivalence() {
    use bionicdb::NocRetryConfig;

    let cfg = BionicConfig {
        noc_retry: Some(NocRetryConfig {
            timeout_cycles: 1024,
            max_attempts: 4,
        }),
        ..BionicConfig::small(4)
    };
    let spec = YcsbSpec {
        remote_fraction: 0.8,
        ..YcsbSpec::tiny()
    };
    let mut plan = FaultPlan::none()
        .delay_nth_send(1, 40)
        .delay_nth_send(6, 13)
        .dram_transient(3, 17)
        .dram_transient(11, 9);
    for n in [2u64, 7, 12] {
        plan = plan.drop_nth_send(n);
    }
    let strict = ycsb_all_modes(
        cfg,
        spec,
        &[YcsbKind::ReadHomed],
        16,
        Some(plan),
        0xFA11,
        "faulted",
    );
    assert!(strict.machine.committed > 0, "workload must commit");
    assert!(
        strict.noc.dropped >= 1 && strict.noc.delayed >= 1,
        "faults actually fired: {:?}",
        strict.noc
    );
    assert!(
        strict.dram.transient_faults >= 1,
        "DRAM transients actually fired"
    );
}

/// A crash-at-cycle plan must stop the parallel run on exactly the same
/// cycle with exactly the same machine state as serial: the epoch horizon
/// is capped at `crash_at - 1` and the crash cycle itself ticks serially.
#[test]
fn crash_plan_parallel_equivalence() {
    // A crash landing mid-run; chosen so work is genuinely in flight.
    for crash_at in [150u64, 1_000, 5_000] {
        let plan = FaultPlan::none().crash_at(crash_at);
        let strict = ycsb_run(
            BionicConfig::small(4),
            YcsbSpec::tiny(),
            &[YcsbKind::ReadLocal, YcsbKind::UpdateLocal],
            24,
            Some(plan.clone()),
            0xC4A5,
            Mode::Strict,
        );
        for mode in [Mode::Fast, Mode::Par(2), Mode::Par(4)] {
            let other = ycsb_run(
                BionicConfig::small(4),
                YcsbSpec::tiny(),
                &[YcsbKind::ReadLocal, YcsbKind::UpdateLocal],
                24,
                Some(plan.clone()),
                0xC4A5,
                mode,
            );
            assert_identical(
                &strict,
                &other,
                &format!("crash@{crash_at} [{mode:?}]"),
            );
        }
        if strict.crashed {
            assert_eq!(strict.now, crash_at, "crash stops on the crash cycle");
        }
    }
}

/// The Chrome trace export must also be byte-identical: parallel lanes
/// buffer events locally and the barrier merges them back into the serial
/// (cycle, worker) sink order.
#[test]
fn trace_bytes_identical_across_modes() {
    use bionicdb_fpga::ChromeTraceSink;

    let run = |mode: Mode| -> (Snapshot, String) {
        let mut y = YcsbBionic::build(BionicConfig::small(4), YcsbSpec::tiny(), 4);
        apply(&mut y.machine, mode);
        y.machine.set_trace_sink(Box::new(ChromeTraceSink::new()));
        let kinds = [YcsbKind::ReadLocal, YcsbKind::UpdateLocal, YcsbKind::Scan];
        let size = kinds.iter().map(|&k| y.block_size(k)).max().unwrap();
        let mut pools: Vec<BlockPool> = (0..4)
            .map(|w| BlockPool::new(&mut y.machine, w, 12, size))
            .collect();
        let mut rng = YcsbBionic::rng(0x7AACE);
        for (w, pool) in pools.iter_mut().enumerate() {
            for i in 0..12 {
                let blk = pool.take();
                y.submit_txn(w, blk, kinds[i % kinds.len()], &mut rng);
            }
        }
        y.machine.run_to_quiescence();
        let trace = y.machine.trace_json().expect("sink exports a trace");
        (snapshot(&y.machine), trace)
    };

    let (strict, strict_trace) = run(Mode::Strict);
    assert!(strict.machine.committed > 0, "workload must commit");
    for mode in [Mode::Fast, Mode::Par(2), Mode::Par(4)] {
        let (other, other_trace) = run(mode);
        assert_identical(&strict, &other, &format!("traced [{mode:?}]"));
        assert_eq!(
            strict_trace, other_trace,
            "trace bytes diverge [{mode:?}]"
        );
    }
}

/// Run a [`StdWorkload`] wave through the generic bench driver under a
/// given mode and snapshot the machine.
fn std_workload_run(w: StdWorkload, txns_per_worker: usize, mode: Mode) -> Snapshot {
    let mut wl = w.build(BionicConfig::small(4));
    apply(wl.machine(), mode);
    bionicdb_bench::drive(&mut *wl, txns_per_worker);
    snapshot(wl.machine_ref())
}

/// Every workload behind the `Workload` trait — YCSB, TPC-C, SmallBank —
/// is byte-identical across strict serial, fast-forward, and
/// epoch-parallel schedules when driven by the one generic driver. New
/// workloads join this equivalence gate by appearing in
/// [`StdWorkload::ALL`]; SmallBank inherits it with zero engine changes.
#[test]
fn std_workloads_parallel_equivalence() {
    for w in StdWorkload::ALL {
        let strict = std_workload_run(w, 8, Mode::Strict);
        assert!(
            strict.machine.committed > 0,
            "{w:?}: workload must commit"
        );
        for mode in [Mode::Fast, Mode::Par(2), Mode::Par(4)] {
            let other = std_workload_run(w, 8, mode);
            assert_identical(&strict, &other, &format!("{w:?} [{mode:?}]"));
        }
    }
}

/// Every workload × Ring and MultiChip topologies × matrix and global
/// lookahead × 1/2/4 threads — all byte-identical to strict serial. This
/// is the sweep the per-pair lookahead matrix must survive: Ring gives
/// every pair a different latency, MultiChip makes near and far pairs
/// differ by 25×.
#[test]
fn std_workloads_topology_lookahead_sweep() {
    let topologies = [
        Topology::Ring,
        Topology::MultiChip {
            workers_per_node: 2,
            inter_node_hops: 25,
        },
    ];
    for topo in topologies {
        for w in StdWorkload::ALL {
            let cfg = BionicConfig {
                topology: topo,
                ..BionicConfig::small(4)
            };
            let run = |mode: Mode| -> Snapshot {
                let mut wl = w.build(cfg.clone());
                apply(wl.machine(), mode);
                bionicdb_bench::drive(&mut *wl, 5);
                snapshot(wl.machine_ref())
            };
            let strict = run(Mode::Strict);
            assert!(strict.machine.committed > 0, "{w:?}: workload must commit");
            for mode in [
                Mode::Par(1),
                Mode::Par(2),
                Mode::Par(4),
                Mode::ParGlobal(2),
                Mode::ParGlobal(4),
            ] {
                assert_identical(&strict, &run(mode), &format!("{w:?} {topo:?} [{mode:?}]"));
            }
        }
    }
}

/// Lane activity (rounds, epoch-length histograms, barrier idle) is
/// populated by parallel runs yet *bit-inert*: the machine snapshot and
/// report JSON stay byte-identical to strict serial, which never touches
/// it.
#[test]
fn lane_activity_populated_and_bit_inert() {
    let cfg = BionicConfig {
        topology: Topology::MultiChip {
            workers_per_node: 2,
            inter_node_hops: 8,
        },
        ..BionicConfig::small(4)
    };
    let spec = YcsbSpec {
        remote_fraction: 0.5,
        ..YcsbSpec::tiny()
    };
    let run = |mode: Mode| -> (Snapshot, u64, u64, u64) {
        let mut y = YcsbBionic::build(cfg.clone(), spec.clone(), 4);
        apply(&mut y.machine, mode);
        let size = y.block_size(YcsbKind::ReadHomed);
        let mut pools: Vec<BlockPool> = (0..4)
            .map(|w| BlockPool::new(&mut y.machine, w, 12, size))
            .collect();
        let mut rng = YcsbBionic::rng(0x1A7E);
        for (w, pool) in pools.iter_mut().enumerate() {
            for _ in 0..12 {
                let blk = pool.take();
                y.submit_txn(w, blk, YcsbKind::ReadHomed, &mut rng);
            }
        }
        y.machine.run_to_quiescence();
        let rounds = y.machine.epoch_rounds();
        let lane_rounds: u64 = y.machine.lane_activity().iter().map(|l| l.rounds).sum();
        let spans: u64 = y
            .machine
            .lane_activity()
            .iter()
            .map(|l| l.epoch_len.count())
            .sum();
        (snapshot(&y.machine), rounds, lane_rounds, spans)
    };
    let (strict, s_rounds, s_lane_rounds, s_spans) = run(Mode::Strict);
    assert_eq!(
        (s_rounds, s_lane_rounds, s_spans),
        (0, 0, 0),
        "serial runs never touch lane activity"
    );
    let (par, p_rounds, p_lane_rounds, p_spans) = run(Mode::Par(2));
    assert!(
        p_rounds > 0 && p_lane_rounds > 0 && p_spans > 0,
        "parallel run populates lane activity (rounds={p_rounds}, lane_rounds={p_lane_rounds}, spans={p_spans})"
    );
    assert_identical(&strict, &par, "lane-activity bit-inertness");
}

/// The point of the lookahead matrix: five workers on three chips
/// ({0,1}, {2,3}, {4}), with worker 4 alone on its chip grinding a long
/// local-only backlog while the four peers retire two local reads each
/// and go idle. The global horizon is the cheapest pair anywhere — the
/// 3-cycle same-chip links on the full chips — so it barrier-steps the
/// hot lane every `Lmin` cycles forever. The per-pair matrix knows the
/// only way worker 4 can be affected is its own traffic bouncing off a
/// remote chip (a 150-cycle round trip), so its epochs run ~50× longer:
/// same bytes out, at least 5× fewer rounds.
#[test]
fn matrix_lookahead_reduces_rounds_on_multichip() {
    let cfg = BionicConfig {
        topology: Topology::MultiChip {
            workers_per_node: 2,
            inter_node_hops: 25,
        },
        ..BionicConfig::small(5)
    };
    let spec = YcsbSpec::tiny();
    let run = |mode: Mode| -> (Snapshot, u64) {
        let mut y = YcsbBionic::build(cfg.clone(), spec.clone(), 4);
        apply(&mut y.machine, mode);
        let size = y
            .block_size(YcsbKind::UpdateLocal)
            .max(y.block_size(YcsbKind::ReadLocal));
        let mut pools: Vec<BlockPool> = (0..5)
            .map(|w| BlockPool::new(&mut y.machine, w, 40, size))
            .collect();
        let mut rng = YcsbBionic::rng(0x5EED);
        // Worker 4 grinds through a long local-only backlog; the rest
        // retire a couple of local reads and go idle (local, so their
        // lanes genuinely quiesce instead of waiting on the hot worker).
        for _ in 0..40 {
            let blk = pools[4].take();
            y.submit_txn(4, blk, YcsbKind::UpdateLocal, &mut rng);
        }
        for (w, pool) in pools.iter_mut().enumerate().take(4) {
            for _ in 0..2 {
                let blk = pool.take();
                y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut rng);
            }
        }
        y.machine.run_to_quiescence();
        (snapshot(&y.machine), y.machine.epoch_rounds())
    };
    let (matrix, matrix_rounds) = run(Mode::Par(2));
    let (global, global_rounds) = run(Mode::ParGlobal(2));
    assert_identical(&matrix, &global, "matrix vs global lookahead");
    assert!(
        matrix_rounds * 5 <= global_rounds,
        "per-pair lookahead should cut the barrier count at least 5x \
         (matrix={matrix_rounds}, global={global_rounds})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any workload family, any topology, any per-worker wave size, either
    /// lookahead mode: serial and epoch-parallel runs through the generic
    /// driver stay byte-identical.
    #[test]
    fn arbitrary_std_workload_waves_byte_identical(
        which in 0usize..StdWorkload::ALL.len(),
        topo in 0usize..3,
        txns in 1usize..10,
        threads in 1usize..5,
        global in any::<bool>(),
    ) {
        let w = StdWorkload::ALL[which];
        let topology = [
            Topology::Crossbar,
            Topology::Ring,
            Topology::MultiChip { workers_per_node: 2, inter_node_hops: 25 },
        ][topo];
        let cfg = BionicConfig { topology, ..BionicConfig::small(4) };
        let run = |mode: Mode| -> Snapshot {
            let mut wl = w.build(cfg.clone());
            apply(wl.machine(), mode);
            bionicdb_bench::drive(&mut *wl, txns);
            snapshot(wl.machine_ref())
        };
        let serial = run(Mode::Fast);
        let mode = if global { Mode::ParGlobal(threads) } else { Mode::Par(threads) };
        let par = run(mode);
        prop_assert_eq!(&serial.now, &par.now, "cycle counts diverge [{:?} {:?}]", w, mode);
        prop_assert_eq!(&serial.json, &par.json, "report JSON diverges [{:?} {:?}]", w, mode);
        prop_assert_eq!(&serial, &par);
    }

    /// Arbitrary interleavings across four workers, arbitrary crash cycles:
    /// serial strict, serial fast-forward, and epoch-parallel at 2 and 4
    /// threads all produce byte-identical report JSON.
    #[test]
    fn arbitrary_runs_byte_identical(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec((0usize..4, 0usize..4), 1..20),
        crash_raw in 0u64..20_000,
    ) {
        // Values below 100 mean "no crash"; the rest are crash cycles.
        let crash = (crash_raw >= 100).then_some(crash_raw);
        let run = |mode: Mode| -> Snapshot {
            let mut y = YcsbBionic::build(BionicConfig::small(4), YcsbSpec::tiny(), 4);
            apply(&mut y.machine, mode);
            if let Some(c) = crash {
                y.machine.set_fault_plan(FaultPlan::none().crash_at(c));
            }
            let kinds = [
                YcsbKind::ReadLocal,
                YcsbKind::UpdateLocal,
                YcsbKind::Scan,
                YcsbKind::ReadHomed,
            ];
            let size = kinds.iter().map(|&k| y.block_size(k)).max().unwrap();
            let mut pools: Vec<BlockPool> = (0..4)
                .map(|w| BlockPool::new(&mut y.machine, w, ops.len(), size))
                .collect();
            let mut rng = YcsbBionic::rng(seed);
            for &(w, k) in &ops {
                let blk = pools[w].take();
                y.submit_txn(w, blk, kinds[k], &mut rng);
            }
            y.machine.run_to_quiescence();
            snapshot(&y.machine)
        };
        let strict = run(Mode::Strict);
        for mode in [Mode::Fast, Mode::Par(2), Mode::Par(4)] {
            let other = run(mode);
            prop_assert_eq!(&strict.now, &other.now, "cycle counts diverge [{:?}]", mode);
            prop_assert_eq!(&strict.dram_image, &other.dram_image, "DRAM images diverge [{:?}]", mode);
            prop_assert_eq!(&strict.json, &other.json, "report JSON diverges [{:?}]", mode);
            prop_assert_eq!(&strict, &other);
        }
    }
}
