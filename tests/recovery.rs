//! Integration tests for command-logging recovery (paper §4.8).

use bionicdb::recovery::{Checkpoint, RecoveryError};
use bionicdb::{asm::assemble, BionicConfig, CommandLog, SystemBuilder, TableMeta, TxnStatus};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ADD: &str = r#"
proc add
logic:
    update 0, 0, c0
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    load g1, [blk+8]
    load g2, [g0+72]
    add g2, g1
    store g2, [g0+72]
    getts g3
    store g3, [g0+8]
    mov g4, 0
    store g4, [g0+24]
    commit
abort:
    abort
"#;

fn build(workers: usize) -> (bionicdb::Machine, bionicdb::TableId, bionicdb::ProcId) {
    let mut b = SystemBuilder::new(BionicConfig::small(workers));
    let t = b.table(TableMeta::hash("counters", 8, 8, 1 << 8));
    let p = b.proc(assemble(ADD).unwrap());
    (b.build(), t, p)
}

#[test]
fn replay_reproduces_exact_state_across_partitions() {
    let workers = 3;
    let (mut db, t, p) = build(workers);
    for w in 0..workers {
        for k in 0..8u64 {
            db.loader(w)
                .insert(t, &k.to_le_bytes(), &0u64.to_le_bytes());
        }
    }
    let checkpoint = Checkpoint::dump(&db);

    let mut rng = SmallRng::seed_from_u64(99);
    let mut log = CommandLog::new();
    for _ in 0..30 {
        let w = rng.gen_range(0..workers);
        let blk = db.alloc_block(w, 128);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, rng.gen_range(0..8));
        db.write_block_u64(blk, 8, rng.gen_range(1..100));
        db.submit(w, blk);
        db.run_to_quiescence_limit(1 << 24);
        log.capture(&db, w, blk);
    }
    let state = Checkpoint::dump(&db);
    assert_eq!(log.len(), 30);

    // Recover on a fresh machine from the durable bytes.
    let bytes = log.to_bytes();
    let recovered = CommandLog::from_bytes(&bytes).unwrap();
    let (mut db2, _, _) = build(workers);
    checkpoint.load_into(&mut db2);
    assert_eq!(recovered.replay(&mut db2), 30);
    assert_eq!(Checkpoint::dump(&db2), state);
}

#[test]
fn aborted_transactions_are_not_logged_or_replayed() {
    let (mut db, t, p) = build(1);
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &0u64.to_le_bytes());
    let checkpoint = Checkpoint::dump(&db);

    let mut log = CommandLog::new();
    // One committed add, one aborted (missing key).
    let ok = db.alloc_block(0, 128);
    db.init_block(ok, p);
    db.write_block_u64(ok, 0, 1);
    db.write_block_u64(ok, 8, 7);
    db.submit(0, ok);
    let bad = db.alloc_block(0, 128);
    db.init_block(bad, p);
    db.write_block_u64(bad, 0, 42); // absent key -> abort
    db.write_block_u64(bad, 8, 7);
    db.submit(0, bad);
    db.run_to_quiescence_limit(1 << 24);
    assert_eq!(db.block_status(bad), TxnStatus::Aborted);
    log.capture(&db, 0, ok);
    log.capture(&db, 0, bad);
    assert_eq!(log.len(), 1, "only the committed block is persisted");

    let (mut db2, t2, _) = build(1);
    checkpoint.load_into(&mut db2);
    assert_eq!(log.replay(&mut db2), 1);
    let addr = db2.loader(0).lookup(t2, &1u64.to_le_bytes()).unwrap();
    let v = u64::from_le_bytes(db2.loader(0).payload(t2, addr)[..8].try_into().unwrap());
    assert_eq!(v, 7);
}

#[test]
fn replay_orders_by_commit_timestamp_across_workers() {
    // Interleave commits on two workers; the log is captured out of order,
    // and replay must still converge to the same state (increments commute
    // here, so instead check replay *count* and determinism of the final
    // image against the original).
    let (mut db, _t, p) = build(2);
    for w in 0..2 {
        db.loader(w)
            .insert(_t, &0u64.to_le_bytes(), &0u64.to_le_bytes());
    }
    let checkpoint = Checkpoint::dump(&db);
    let mut log = CommandLog::new();
    let mut captured = Vec::new();
    for i in 0..10u64 {
        let w = (i % 2) as usize;
        let blk = db.alloc_block(w, 128);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, 0);
        db.write_block_u64(blk, 8, 1 << i);
        db.submit(w, blk);
        captured.push((w, blk));
    }
    db.run_to_quiescence_limit(1 << 26);
    // Capture in scrambled order.
    for &(w, blk) in captured.iter().rev() {
        log.capture(&db, w, blk);
    }
    let state = Checkpoint::dump(&db);

    let (mut db2, _, _) = build(2);
    checkpoint.load_into(&mut db2);
    log.replay(&mut db2);
    assert_eq!(Checkpoint::dump(&db2), state);
}

#[test]
fn corrupt_log_is_rejected() {
    let log = CommandLog::new();
    let mut bytes = log.to_bytes();
    bytes[0] = b'X';
    assert_eq!(
        CommandLog::from_bytes(&bytes),
        Err(RecoveryError::BadMagic)
    );
}

#[test]
fn torn_tail_replays_the_committed_prefix() {
    // Run committed work, then tear the durable log mid-append of the last
    // record. Recovery must salvage every whole record and replay exactly
    // that prefix — never panic, never decode garbage.
    let workers = 2;
    let (mut db, t, p) = build(workers);
    for w in 0..workers {
        for k in 0..4u64 {
            db.loader(w)
                .insert(t, &k.to_le_bytes(), &0u64.to_le_bytes());
        }
    }
    let checkpoint = Checkpoint::dump(&db);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut log = CommandLog::new();
    for _ in 0..6 {
        let w = rng.gen_range(0..workers);
        let blk = db.alloc_block(w, 128);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, rng.gen_range(0..4));
        db.write_block_u64(blk, 8, rng.gen_range(1..100));
        db.submit(w, blk);
        db.run_to_quiescence_limit(1 << 24);
        log.capture(&db, w, blk);
    }
    assert_eq!(log.len(), 6);

    let clean = log.to_bytes();
    let torn = &clean[..clean.len() - 11];
    let err = CommandLog::from_bytes(torn).unwrap_err();
    assert!(err.is_torn_tail(), "cut tail is detected as torn: {err}");
    assert_eq!(err.valid_prefix(), 5);
    let (prefix, _) = CommandLog::from_bytes_prefix(torn);
    assert_eq!(prefix.records(), &log.records()[..5]);

    // The recovered image equals a replay of the same five records.
    let (mut db2, _, _) = build(workers);
    checkpoint.load_into(&mut db2);
    assert_eq!(prefix.replay(&mut db2), 5);
    let reference = CommandLog::from_records(log.records()[..5].to_vec());
    let (mut db3, _, _) = build(workers);
    checkpoint.load_into(&mut db3);
    reference.replay(&mut db3);
    assert_eq!(Checkpoint::dump(&db2), Checkpoint::dump(&db3));
}

#[test]
fn checkpoint_bytes_roundtrip_through_a_machine() {
    // Dump → serialize → deserialize → load into a fresh machine must
    // reproduce the logical image; corrupting any byte must be detected.
    let (mut db, t, p) = build(2);
    for w in 0..2 {
        for k in 0..4u64 {
            db.loader(w)
                .insert(t, &k.to_le_bytes(), &(k * 11).to_le_bytes());
        }
    }
    let blk = db.alloc_block(0, 128);
    db.init_block(blk, p);
    db.write_block_u64(blk, 0, 2);
    db.write_block_u64(blk, 8, 5);
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    assert_eq!(db.block_status(blk), TxnStatus::Committed);

    let ckpt = Checkpoint::dump(&db);
    let bytes = ckpt.to_bytes();
    let decoded = Checkpoint::from_bytes(&bytes).unwrap();
    assert_eq!(decoded, ckpt);
    let (mut db2, _, _) = build(2);
    decoded.load_into(&mut db2);
    assert_eq!(Checkpoint::dump(&db2), ckpt);

    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    assert_eq!(
        Checkpoint::from_bytes(&bad),
        Err(RecoveryError::CheckpointChecksum)
    );
}
