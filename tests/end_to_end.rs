//! End-to-end integration: stored procedures with reads, in-place updates,
//! UNDO-backed aborts and timestamp CC on a full simulated machine.

use bionicdb::{asm::assemble, BionicConfig, BlockStatus, SystemBuilder, TableMeta, TxnStatus};

/// A conditional-withdraw procedure: aborts (voluntarily) when the balance
/// is insufficient, restoring nothing because the write happens only in
/// the commit handler after the check.
const WITHDRAW: &str = r#"
proc withdraw
logic:
    update 0, 0, c0
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    load g1, [blk+8]        ; amount
    load g2, [g0+72]        ; balance
    cmp g2, g1
    blt insufficient
    sub g2, g1
    store g2, [g0+72]
    getts g3
    store g3, [g0+8]
    mov g4, 0
    store g4, [g0+24]
    commit
insufficient:
    jmp abort
abort:
    ; clear the dirty mark if the update was granted
    ret g0, c0
    cmp g0, 0
    blt done
    mov g4, 0
    store g4, [g0+24]
done:
    abort
"#;

fn build() -> (bionicdb::Machine, bionicdb::TableId, bionicdb::ProcId) {
    let mut b = SystemBuilder::new(BionicConfig::small(1));
    let t = b.table(TableMeta::hash("accounts", 8, 8, 1 << 8));
    let p = b.proc(assemble(WITHDRAW).unwrap());
    (b.build(), t, p)
}

fn balance(db: &mut bionicdb::Machine, t: bionicdb::TableId, key: u64) -> u64 {
    let addr = db.loader(0).lookup(t, &key.to_le_bytes()).unwrap();
    u64::from_le_bytes(db.loader(0).payload(t, addr)[..8].try_into().unwrap())
}

#[test]
fn successful_withdraw_commits_and_applies() {
    let (mut db, t, p) = build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &500u64.to_le_bytes());
    let blk = db.alloc_block(0, 128);
    db.init_block(blk, p);
    db.write_block_u64(blk, 0, 1);
    db.write_block_u64(blk, 8, 120);
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    assert!(db.block_status(blk).is_committed());
    assert!(db.block_commit_ts(blk) > 0);
    assert_eq!(balance(&mut db, t, 1), 380);
}

#[test]
fn insufficient_funds_aborts_without_side_effects() {
    let (mut db, t, p) = build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &50u64.to_le_bytes());
    let blk = db.alloc_block(0, 128);
    db.init_block(blk, p);
    db.write_block_u64(blk, 0, 1);
    db.write_block_u64(blk, 8, 120);
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    assert_eq!(db.block_status(blk), TxnStatus::Aborted);
    assert_eq!(balance(&mut db, t, 1), 50, "balance untouched");
    // The tuple must not be left dirty: a later withdraw succeeds.
    let blk2 = db.alloc_block(0, 128);
    db.init_block(blk2, p);
    db.write_block_u64(blk2, 0, 1);
    db.write_block_u64(blk2, 8, 20);
    db.submit(0, blk2);
    db.run_to_quiescence_limit(1 << 24);
    assert!(db.block_status(blk2).is_committed());
    assert_eq!(balance(&mut db, t, 1), 30);
}

#[test]
fn missing_account_aborts() {
    let (mut db, _t, p) = build();
    let blk = db.alloc_block(0, 128);
    db.init_block(blk, p);
    db.write_block_u64(blk, 0, 999);
    db.write_block_u64(blk, 8, 1);
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    assert_eq!(db.block_status(blk), TxnStatus::Aborted);
}

#[test]
fn concurrent_withdraws_conserve_money_under_retry() {
    let (mut db, t, p) = build();
    db.loader(0)
        .insert(t, &1u64.to_le_bytes(), &1_000u64.to_le_bytes());
    let mut blocks = Vec::new();
    for _ in 0..12 {
        let blk = db.alloc_block(0, 128);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, 1);
        db.write_block_u64(blk, 8, 50);
        db.submit(0, blk);
        blocks.push(blk);
    }
    db.run_to_quiescence_limit(1 << 26);
    // Retry dirty-rejected withdraws until all finish decisively.
    for _ in 0..64 {
        let pending: Vec<_> = blocks
            .iter()
            .copied()
            .filter(|&b| db.block_status(b) == TxnStatus::Aborted)
            .collect();
        if pending.is_empty() {
            break;
        }
        for blk in pending {
            db.resubmit(0, blk);
        }
        db.run_to_quiescence_limit(1 << 26);
    }
    let committed = blocks
        .iter()
        .filter(|&&b| db.block_status(b).is_committed())
        .count() as u64;
    assert_eq!(committed, 12, "1000 covers 12 x 50; retries converge");
    assert_eq!(balance(&mut db, t, 1), 1_000 - 50 * committed);
}

#[test]
fn determinism_same_inputs_same_cycle_count() {
    // The whole machine is deterministic: identical runs take identical
    // simulated time and produce identical state.
    let run = || {
        let (mut db, t, p) = build();
        db.loader(0)
            .insert(t, &1u64.to_le_bytes(), &10_000u64.to_le_bytes());
        for i in 0..20u64 {
            let blk = db.alloc_block(0, 128);
            db.init_block(blk, p);
            db.write_block_u64(blk, 0, 1);
            db.write_block_u64(blk, 8, 1 + i);
            db.submit(0, blk);
            db.run_to_quiescence_limit(1 << 24);
        }
        (db.now(), balance(&mut db, t, 1))
    };
    assert_eq!(run(), run());
}
