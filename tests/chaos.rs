//! Chaos integration tests: crash-at-a-random-cycle recovery, lossy-NoC
//! no-wedge runs, and byte-level robustness of the durable formats.
//!
//! The heavy lifting (clean-twin oracle, crash hook, recovery assertions)
//! lives in `bionicdb_bench::chaos`; these tests drive it across random
//! crash points and seeds. Case counts are small because each case builds
//! four machines and runs the workload twice — the fixed-matrix release
//! sweep in `scripts/check.sh` covers the broad grid.

use bionicdb::recovery::{Checkpoint, CommandLog};
use bionicdb::{BionicConfig, SystemBuilder, TableMeta};
use bionicdb_bench::chaos::{run_crash, run_noc_drop, ChaosWorkload};
use proptest::prelude::*;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Crash at a random cycle → recover → committed-prefix equality. One
// property per workload so a failure names its workload directly.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn ycsb_crash_recovers_committed_prefix(
        frac in 1u64..1000,
        torn_sel in 0u64..2,
        seed in 0u64..1 << 32,
    ) {
        run_crash(ChaosWorkload::Ycsb, frac, torn_sel == 1, seed);
    }

    #[test]
    fn tpcc_crash_recovers_committed_prefix(
        frac in 1u64..1000,
        torn_sel in 0u64..2,
        seed in 0u64..1 << 32,
    ) {
        run_crash(ChaosWorkload::Tpcc, frac, torn_sel == 1, seed);
    }

    #[test]
    fn multisite_crash_recovers_committed_prefix(
        frac in 1u64..1000,
        torn_sel in 0u64..2,
        seed in 0u64..1 << 32,
    ) {
        run_crash(ChaosWorkload::Multisite, frac, torn_sel == 1, seed);
    }
}

// ---------------------------------------------------------------------------
// Message loss never wedges the machine or corrupts durable state.
// ---------------------------------------------------------------------------

#[test]
fn message_loss_never_wedges_any_workload() {
    for w in [
        ChaosWorkload::Ycsb,
        ChaosWorkload::Tpcc,
        ChaosWorkload::Multisite,
    ] {
        let r = run_noc_drop(w, &[0, 2, 5], 17);
        assert!(r.dropped >= 1, "{w:?}: plan fired");
    }
}

// ---------------------------------------------------------------------------
// Durable-format robustness: arbitrary single-byte corruption and
// truncation of serialized logs/checkpoints either decode to exactly the
// intact prefix or return a typed error. Decoding must never panic.
// ---------------------------------------------------------------------------

/// One committed run's durable bytes, built once and shared by all cases.
fn durable_fixture() -> &'static (Vec<u8>, Vec<u8>, usize) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u8>, usize)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        const ADD: &str = r#"
proc add
logic:
    update 0, 0, c0
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    load g1, [blk+8]
    load g2, [g0+72]
    add g2, g1
    store g2, [g0+72]
    getts g3
    store g3, [g0+8]
    mov g4, 0
    store g4, [g0+24]
    commit
abort:
    abort
"#;
        let mut b = SystemBuilder::new(BionicConfig::small(2));
        let t = b.table(TableMeta::hash("counters", 8, 8, 1 << 8));
        let p = b.proc(bionicdb::asm::assemble(ADD).unwrap());
        let mut db = b.build();
        for w in 0..2 {
            for k in 0..4u64 {
                db.loader(w).insert(t, &k.to_le_bytes(), &0u64.to_le_bytes());
            }
        }
        let mut log = CommandLog::new();
        for i in 0..8u64 {
            let w = (i % 2) as usize;
            let blk = db.alloc_block(w, 128);
            db.init_block(blk, p);
            db.write_block_u64(blk, 0, i % 4);
            db.write_block_u64(blk, 8, i + 1);
            db.submit(w, blk);
            db.run_to_quiescence_limit(1 << 24);
            log.capture(&db, w, blk);
        }
        assert_eq!(log.len(), 8);
        (log.to_bytes(), Checkpoint::dump(&db).to_bytes(), log.len())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corrupted_log_bytes_never_panic(offset in 0u64..1 << 16, xor in 1u8..=255) {
        let (log_bytes, _, records) = durable_fixture();
        let mut bad = log_bytes.clone();
        let i = (offset % bad.len() as u64) as usize;
        bad[i] ^= xor;
        // Strict decode: intact bytes or a typed error, never a panic.
        match CommandLog::from_bytes(&bad) {
            Ok(log) => {
                // The flip landed somewhere no integrity check covers
                // (impossible for this format: magic, counts, frames and
                // bodies are all covered) — decoding "success" on damaged
                // bytes would be silent corruption.
                prop_assert_eq!(log.len(), *records);
                prop_assert!(false, "single-byte corruption went undetected at {}", i);
            }
            Err(e) => {
                let (prefix, _) = CommandLog::from_bytes_prefix(&bad);
                prop_assert!(prefix.len() <= *records);
                prop_assert_eq!(prefix.len(), e.valid_prefix());
            }
        }
    }

    #[test]
    fn truncated_log_bytes_decode_to_a_prefix(cut in 1u64..1 << 16) {
        let (log_bytes, _, records) = durable_fixture();
        let keep = (cut % log_bytes.len() as u64) as usize;
        let torn = &log_bytes[..keep];
        let (prefix, err) = CommandLog::from_bytes_prefix(torn);
        prop_assert!(prefix.len() <= *records);
        prop_assert!(err.is_some(), "a shortened image always reports damage");
        // Whatever survived must be byte-exact against the original.
        let whole = CommandLog::from_bytes(log_bytes).unwrap();
        prop_assert_eq!(prefix.records(), &whole.records()[..prefix.len()]);
    }

    #[test]
    fn corrupted_checkpoint_bytes_never_panic(offset in 0u64..1 << 20, xor in 1u8..=255) {
        let (_, ckpt_bytes, _) = durable_fixture();
        let mut bad = ckpt_bytes.clone();
        let i = (offset % bad.len() as u64) as usize;
        bad[i] ^= xor;
        prop_assert!(
            Checkpoint::from_bytes(&bad).is_err(),
            "single-byte checkpoint corruption at {} must be detected",
            i
        );
    }

    #[test]
    fn truncated_checkpoint_bytes_never_panic(cut in 0u64..1 << 20) {
        let (_, ckpt_bytes, _) = durable_fixture();
        let keep = (cut % ckpt_bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::from_bytes(&ckpt_bytes[..keep]).is_err());
    }
}
