//! Property test: host-side bulk loading builds *logically identical*
//! index structures to inserting through the hardware pipelines.
//!
//! Same sdbm bucket placement, same deterministic tower heights — so for
//! any key set, lookups agree, every key is found, and the skiplist's
//! bottom chain enumerates the keys in identical sorted order.

use bionicdb::{BionicConfig, SystemBuilder, TableMeta};
use bionicdb_coproc::layout::{read_header, TOWER_NEXTS, TUPLE_HEADER};
use bionicdb_softcore::builder::ProcBuilder;
use bionicdb_softcore::isa::{MemBase, Operand};
use proptest::prelude::*;

/// Build a machine with one hash + one skiplist table and per-kind insert
/// procedures (single insert per transaction, key at offset 0, payload at
/// offset 8).
fn build() -> (
    bionicdb::Machine,
    bionicdb::TableId,
    bionicdb::TableId,
    bionicdb::ProcId,
    bionicdb::ProcId,
) {
    let mut b = SystemBuilder::new(BionicConfig::small(1));
    let hash = b.table(TableMeta::hash("h", 8, 16, 1 << 8));
    let skip = b.table(TableMeta::skiplist("s", 8, 16));
    let mk = |table, flags_off: i64| {
        let mut pb = ProcBuilder::new("ins1");
        let c0 = pb.cp();
        pb.insert(
            table,
            Operand::Imm(0),
            Operand::Imm(8),
            Operand::Imm(-1),
            c0,
        );
        pb.begin_commit();
        let zero = pb.gp();
        pb.mov(zero, Operand::Imm(0));
        let addr = pb.ret_checked(c0);
        pb.store(zero, MemBase::Reg(addr), Operand::Imm(flags_off));
        pb.commit();
        pb.begin_abort();
        pb.abort();
        pb.build().unwrap()
    };
    let hash_ins = b.proc(mk(hash, (TUPLE_HEADER + 16) as i64));
    let skip_ins = b.proc(mk(skip, 16));
    (b.build(), hash, skip, hash_ins, skip_ins)
}

fn insert_via_pipeline(
    db: &mut bionicdb::Machine,
    proc: bionicdb::ProcId,
    key: &[u8],
    payload: &[u8],
) {
    let blk = db.alloc_block(0, 128);
    db.init_block(blk, proc);
    db.write_block(blk, 0, key);
    db.write_block(blk, 8, payload);
    db.submit(0, blk);
    db.run_to_quiescence_limit(1 << 24);
    assert_eq!(db.block_status(blk), bionicdb::TxnStatus::Committed);
}

/// Walk the skiplist bottom chain, returning keys in list order.
fn bottom_chain(db: &bionicdb::Machine, table: bionicdb::TableId) -> Vec<u64> {
    let state = &db.partition(0).tables[table.0 as usize];
    let mut out = Vec::new();
    let mut cur = db.dram().host_read_u64(state.head_next_addr(0));
    while cur != 0 {
        out.push(read_header(db.dram(), cur).key.to_u64());
        cur = db.dram().host_read_u64(cur + TOWER_NEXTS);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn loaded_and_pipelined_indexes_agree(keys in proptest::collection::btree_set(0u64..5_000, 1..40)) {
        let keys: Vec<u64> = keys.into_iter().collect();

        // Machine A: host-side bulk load.
        let (mut a, hash_a, skip_a, _, _) = build();
        for &k in &keys {
            let payload = [k as u8; 16];
            a.loader(0).insert(hash_a, &k.to_le_bytes(), &payload);
            a.loader(0).insert(skip_a, &k.to_be_bytes(), &payload);
        }

        // Machine B: inserts through the index pipelines.
        let (mut b, hash_b, skip_b, hash_ins, skip_ins) = build();
        for &k in &keys {
            let payload = [k as u8; 16];
            insert_via_pipeline(&mut b, hash_ins, &k.to_le_bytes(), &payload);
            insert_via_pipeline(&mut b, skip_ins, &k.to_be_bytes(), &payload);
        }

        // Every key findable in both, with identical payloads.
        for &k in &keys {
            for (m, hash, skip) in [(&mut a, hash_a, skip_a), (&mut b, hash_b, skip_b)] {
                let ha = m.loader(0).lookup(hash, &k.to_le_bytes());
                prop_assert!(ha.is_some(), "hash key {k}");
                prop_assert_eq!(m.loader(0).payload(hash, ha.unwrap()), vec![k as u8; 16]);
                let sa = m.loader(0).lookup(skip, &k.to_be_bytes());
                prop_assert!(sa.is_some(), "skiplist key {k}");
            }
        }
        // Absent keys are absent in both.
        for probe in [5_001u64, 9_999] {
            prop_assert!(a.loader(0).lookup(hash_a, &probe.to_le_bytes()).is_none());
            prop_assert!(b.loader(0).lookup(hash_b, &probe.to_le_bytes()).is_none());
        }
        // The bottom chains enumerate the same sorted key sequence.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(bottom_chain(&a, skip_a), sorted.clone());
        prop_assert_eq!(bottom_chain(&b, skip_b), sorted);
    }
}
