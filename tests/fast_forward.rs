//! Fast-forward scheduler equivalence tests.
//!
//! The machine may skip idle cycles (`Machine::set_fast_forward`), jumping
//! the clock straight to the next component event. The contract is strict:
//! skipping must be *bit-for-bit invisible* — identical cycle counts,
//! identical DRAM images, identical statistics on every component — for any
//! workload. These tests drive the same seeded workloads twice, once with
//! single-cycle stepping and once with skipping, and compare full machine
//! snapshots.

use bionicdb::worker::WorkerStats;
use bionicdb::{BionicConfig, Machine, MachineReport, Topology};
use bionicdb_coproc::hash::HashStats;
use bionicdb_coproc::skiplist::SkipStats;
use bionicdb_coproc::CoprocStats;
use bionicdb_fpga::dram::DramStats;
use bionicdb_noc::NocStats;
use bionicdb_softcore::SoftcoreStats;
use bionicdb_workloads::ycsb::{BlockPool, YcsbBionic, YcsbKind};
use bionicdb_workloads::{TpccSpec, YcsbSpec};
use proptest::prelude::*;

/// Everything observable about a machine after a run.
#[derive(Debug, PartialEq)]
struct Snapshot {
    now: u64,
    machine: bionicdb::MachineStats,
    dram: DramStats,
    noc: NocStats,
    dram_image: u64,
    workers: Vec<WorkerSnapshot>,
    /// The full observability report — latency histograms, per-stage
    /// busy/stalled/idle counters, NoC link stats, DRAM port stats. Folded
    /// into the snapshot so every equivalence test in this file also proves
    /// the whole observability layer is identical strict vs fast-forward.
    report: MachineReport,
}

#[derive(Debug, PartialEq)]
struct WorkerSnapshot {
    softcore: SoftcoreStats,
    coproc: CoprocStats,
    hash: HashStats,
    skiplist: SkipStats,
    glue: WorkerStats,
}

fn snapshot(m: &Machine) -> Snapshot {
    Snapshot {
        now: m.now(),
        machine: m.stats(),
        dram: m.dram_stats(),
        noc: m.noc().stats(),
        dram_image: m.dram().image_digest(),
        workers: (0..m.num_workers())
            .map(|w| {
                let pw = m.worker(w);
                WorkerSnapshot {
                    softcore: pw.softcore.stats(),
                    coproc: pw.coproc.stats(),
                    hash: pw.coproc.hash_stats(),
                    skiplist: pw.coproc.skip_stats(),
                    glue: pw.stats(),
                }
            })
            .collect(),
        report: m.report(),
    }
}

/// Run a seeded YCSB wave on a fresh system and snapshot the result.
fn ycsb_run(
    cfg: BionicConfig,
    spec: YcsbSpec,
    kinds: &[YcsbKind],
    txns_per_worker: usize,
    max_inflight: Option<usize>,
    fast: bool,
    seed: u64,
) -> Snapshot {
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(fast);
    if let Some(n) = max_inflight {
        y.machine.set_max_inflight(n);
    }
    let workers = y.machine.num_workers();
    let size = kinds
        .iter()
        .map(|&k| y.block_size(k))
        .max()
        .expect("at least one kind");
    let mut pools: Vec<BlockPool> = (0..workers)
        .map(|w| BlockPool::new(&mut y.machine, w, txns_per_worker, size))
        .collect();
    let mut rng = YcsbBionic::rng(seed);
    for (w, pool) in pools.iter_mut().enumerate() {
        for i in 0..txns_per_worker {
            let blk = pool.take();
            y.submit_txn(w, blk, kinds[i % kinds.len()], &mut rng);
        }
    }
    y.machine.run_to_quiescence();
    snapshot(&y.machine)
}

fn assert_equivalent(strict: Snapshot, fast: Snapshot, label: &str) {
    assert_eq!(
        strict.now, fast.now,
        "{label}: cycle counts diverge (strict={}, fast={})",
        strict.now, fast.now
    );
    assert_eq!(
        strict.dram_image, fast.dram_image,
        "{label}: DRAM images diverge"
    );
    assert_eq!(strict, fast, "{label}: snapshots diverge");
}

/// YCSB-C (read-only, local) under a tight in-flight cap — the stall-heavy
/// configuration the fast path is built for.
#[test]
fn ycsb_c_low_inflight_equivalence() {
    let cfg = BionicConfig::small(2);
    let spec = YcsbSpec::tiny();
    let strict = ycsb_run(
        cfg.clone(),
        spec.clone(),
        &[YcsbKind::ReadLocal],
        40,
        Some(1),
        false,
        0xFA57,
    );
    let fast = ycsb_run(cfg, spec, &[YcsbKind::ReadLocal], 40, Some(1), true, 0xFA57);
    assert!(strict.machine.committed > 0, "workload must commit");
    assert_equivalent(strict, fast, "ycsb-c low-inflight");
}

/// Mixed YCSB (reads, updates, scans) at the default in-flight depth.
#[test]
fn ycsb_mixed_equivalence() {
    let cfg = BionicConfig::small(2);
    let spec = YcsbSpec::tiny();
    let kinds = [
        YcsbKind::ReadLocal,
        YcsbKind::UpdateLocal,
        YcsbKind::Scan,
        YcsbKind::ReadLocal,
    ];
    let strict = ycsb_run(cfg.clone(), spec.clone(), &kinds, 24, None, false, 0x51CA);
    let fast = ycsb_run(cfg, spec, &kinds, 24, None, true, 0x51CA);
    assert!(strict.machine.committed > 0, "workload must commit");
    assert_equivalent(strict, fast, "ycsb mixed");
}

/// Multisite: four workers on two chips, 75% remote accesses — exercises
/// the NoC head-of-line next_event bound and background requests.
#[test]
fn multisite_equivalence() {
    let cfg = BionicConfig {
        topology: Topology::MultiChip {
            workers_per_node: 2,
            inter_node_hops: 8,
        },
        ..BionicConfig::small(4)
    };
    let spec = YcsbSpec {
        remote_fraction: 0.75,
        ..YcsbSpec::tiny()
    };
    let strict = ycsb_run(
        cfg.clone(),
        spec.clone(),
        &[YcsbKind::ReadHomed],
        24,
        None,
        false,
        0x3317E,
    );
    let fast = ycsb_run(cfg, spec, &[YcsbKind::ReadHomed], 24, None, true, 0x3317E);
    assert!(strict.machine.committed > 0, "workload must commit");
    assert!(
        strict.workers.iter().any(|w| w.glue.remote_requests > 0),
        "multisite run must actually go remote"
    );
    assert_equivalent(strict, fast, "multisite");
}

/// TPC-C NewOrder/Payment mix on two partitions.
#[test]
fn tpcc_mix_equivalence() {
    use bionicdb_workloads::tpcc::TpccBionic;

    let run = |fast: bool| -> Snapshot {
        let mut sys = TpccBionic::build(BionicConfig::small(2), TpccSpec::tiny());
        sys.machine.set_fast_forward(fast);
        let workers = sys.machine.num_workers();
        let mut rng = YcsbBionic::rng(0x7FCC);
        for w in 0..workers {
            for i in 0..16 {
                if i % 2 == 0 {
                    let blk = sys
                        .machine
                        .alloc_block(w, TpccBionic::neworder_block_size());
                    sys.submit_neworder(w, blk, &mut rng);
                } else {
                    let blk = sys.machine.alloc_block(w, TpccBionic::payment_block_size());
                    sys.submit_payment(w, blk, &mut rng);
                }
            }
        }
        sys.machine.run_to_quiescence();
        snapshot(&sys.machine)
    };

    let strict = run(false);
    let fast = run(true);
    assert!(strict.machine.committed > 0, "workload must commit");
    assert_equivalent(strict, fast, "tpcc mix");
}

/// `run_fast` forces skipping regardless of the flag and restores it after.
#[test]
fn run_fast_forces_skipping() {
    let cfg = BionicConfig::small(1);
    let spec = YcsbSpec::tiny();

    let strict = ycsb_run(
        cfg.clone(),
        spec.clone(),
        &[YcsbKind::ReadLocal],
        16,
        None,
        false,
        0xF0,
    );

    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(false);
    let size = y.block_size(YcsbKind::ReadLocal);
    let mut pool = BlockPool::new(&mut y.machine, 0, 16, size);
    let mut rng = YcsbBionic::rng(0xF0);
    for _ in 0..16 {
        let blk = pool.take();
        y.submit_txn(0, blk, YcsbKind::ReadLocal, &mut rng);
    }
    y.machine.run_fast();
    assert_equivalent(strict, snapshot(&y.machine), "run_fast");
}

/// `next_event` contract: stepping strictly cycle by cycle, no component
/// may ever name a cycle that is not strictly in the future.
#[test]
fn next_event_never_in_the_past() {
    let cfg = BionicConfig::small(2);
    let spec = YcsbSpec::tiny();
    let mut y = YcsbBionic::build(cfg, spec, 4);
    y.machine.set_fast_forward(false);
    let size = y.block_size(YcsbKind::UpdateLocal);
    let mut pools: Vec<BlockPool> = (0..2)
        .map(|w| BlockPool::new(&mut y.machine, w, 8, size))
        .collect();
    let mut rng = YcsbBionic::rng(0xBADC);
    for (w, pool) in pools.iter_mut().enumerate() {
        for _ in 0..8 {
            let blk = pool.take();
            y.submit_txn(w, blk, YcsbKind::UpdateLocal, &mut rng);
        }
    }
    let mut steps = 0u64;
    while !(0..y.machine.num_workers()).all(|w| y.machine.worker(w).is_quiescent()) {
        y.machine.run(1);
        steps += 1;
        assert!(steps < 2_000_000, "workload failed to quiesce");
        let now = y.machine.now();
        if let Some(t) = y.machine.dram_next_event() {
            assert!(t > now, "dram next_event {t} <= now {now}");
        }
        if let Some(t) = y.machine.noc().next_event(now) {
            assert!(t > now, "noc next_event {t} <= now {now}");
        }
        for w in 0..y.machine.num_workers() {
            if let Some(t) = y.machine.worker(w).next_event(now) {
                assert!(t > now, "worker {w} next_event {t} <= now {now}");
            }
        }
    }
}

/// Installing `FaultPlan::none()` must be bit-identical to never touching
/// the fault subsystem at all — the tentpole guarantee that fault hooks are
/// pure counter-bumps when no fault is scheduled.
#[test]
fn none_fault_plan_is_bit_identical() {
    use bionicdb::FaultPlan;

    let run = |with_plan: bool| -> Snapshot {
        let mut y = YcsbBionic::build(BionicConfig::small(2), YcsbSpec::tiny(), 4);
        if with_plan {
            y.machine.set_fault_plan(FaultPlan::none());
        }
        let kinds = [YcsbKind::ReadLocal, YcsbKind::UpdateLocal, YcsbKind::Scan];
        let size = kinds.iter().map(|&k| y.block_size(k)).max().unwrap();
        let mut pools: Vec<BlockPool> = (0..2)
            .map(|w| BlockPool::new(&mut y.machine, w, 24, size))
            .collect();
        let mut rng = YcsbBionic::rng(0x20F4);
        for (w, pool) in pools.iter_mut().enumerate() {
            for i in 0..24 {
                let blk = pool.take();
                y.submit_txn(w, blk, kinds[i % kinds.len()], &mut rng);
            }
        }
        y.machine.run_to_quiescence();
        snapshot(&y.machine)
    };
    let bare = run(false);
    let with_none_plan = run(true);
    assert!(bare.machine.committed > 0, "workload must commit");
    assert_equivalent(bare, with_none_plan, "none-plan");
}

/// Armed retry glue plus injected NoC drops/delays and DRAM transients:
/// the fault path must itself be deterministic, and strict vs fast-forward
/// stepping must stay bit-identical even under faults (delays break queue
/// sortedness, retransmit timers add self-generated wakeups — all of it
/// must be invisible to the scheduler contract).
#[test]
fn faulted_runs_are_strict_fast_equivalent() {
    use bionicdb::{FaultPlan, NocRetryConfig};

    let run = |fast: bool| -> Snapshot {
        let cfg = BionicConfig {
            noc_retry: Some(NocRetryConfig {
                timeout_cycles: 1024,
                max_attempts: 4,
            }),
            ..BionicConfig::small(2)
        };
        let spec = YcsbSpec {
            remote_fraction: 0.8,
            ..YcsbSpec::tiny()
        };
        let mut y = YcsbBionic::build(cfg, spec, 4);
        y.machine.set_fast_forward(fast);
        let mut plan = FaultPlan::none()
            .delay_nth_send(1, 40)
            .delay_nth_send(6, 13)
            .dram_transient(3, 17)
            .dram_transient(11, 9);
        for n in [2u64, 7, 12] {
            plan = plan.drop_nth_send(n);
        }
        y.machine.set_fault_plan(plan);
        let size = y.block_size(YcsbKind::ReadHomed);
        let mut pools: Vec<BlockPool> = (0..2)
            .map(|w| BlockPool::new(&mut y.machine, w, 16, size))
            .collect();
        let mut rng = YcsbBionic::rng(0xFA11);
        for (w, pool) in pools.iter_mut().enumerate() {
            for _ in 0..16 {
                let blk = pool.take();
                y.submit_txn(w, blk, YcsbKind::ReadHomed, &mut rng);
            }
        }
        y.machine.run_to_quiescence();
        snapshot(&y.machine)
    };
    let strict = run(false);
    let fast = run(true);
    assert!(strict.machine.committed > 0, "workload must commit");
    assert!(
        strict.noc.dropped >= 1 && strict.noc.delayed >= 1,
        "faults actually fired: {:?}",
        strict.noc
    );
    assert!(
        strict.dram.transient_faults >= 1,
        "DRAM transients actually fired"
    );
    assert_equivalent(strict, fast, "faulted run");
}

/// The trace sink must be bit-inert: all four combinations of
/// {NullSink, ChromeTraceSink} × {strict, fast-forward} produce identical
/// cycle counts, DRAM images, statistics, and observability reports. The
/// sink only buffers host-side lifecycle events — nothing in the machine
/// reads it — so installing one cannot perturb the run.
#[test]
fn trace_sink_is_bit_inert_strict_and_fast() {
    use bionicdb_fpga::ChromeTraceSink;

    let run = |traced: bool, fast: bool| -> Snapshot {
        let mut y = YcsbBionic::build(BionicConfig::small(2), YcsbSpec::tiny(), 4);
        y.machine.set_fast_forward(fast);
        if traced {
            y.machine.set_trace_sink(Box::new(ChromeTraceSink::new()));
        }
        let kinds = [YcsbKind::ReadLocal, YcsbKind::UpdateLocal, YcsbKind::Scan];
        let size = kinds.iter().map(|&k| y.block_size(k)).max().unwrap();
        let mut pools: Vec<BlockPool> = (0..2)
            .map(|w| BlockPool::new(&mut y.machine, w, 24, size))
            .collect();
        let mut rng = YcsbBionic::rng(0x7AACE);
        for (w, pool) in pools.iter_mut().enumerate() {
            for i in 0..24 {
                let blk = pool.take();
                y.submit_txn(w, blk, kinds[i % kinds.len()], &mut rng);
            }
        }
        y.machine.run_to_quiescence();
        if traced {
            let trace = y.machine.trace_json().expect("sink exports a trace");
            assert!(trace.contains("\"traceEvents\""));
        } else {
            assert!(y.machine.trace_json().is_none(), "NullSink exports nothing");
        }
        snapshot(&y.machine)
    };

    let baseline = run(false, false);
    assert!(baseline.machine.committed > 0, "workload must commit");
    assert!(
        baseline.report.obs.txn_commit.count() > 0,
        "histograms must have recorded the committed transactions"
    );
    assert_equivalent(
        run(false, false),
        run(true, false),
        "sink inert under strict stepping",
    );
    assert_equivalent(
        run(false, true),
        run(true, true),
        "sink inert under fast-forward",
    );
    assert_equivalent(
        run(true, false),
        run(true, true),
        "traced run strict vs fast-forward",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary interleavings of transaction kinds across two workers
    /// produce identical cycle counts and DRAM images with skipping on/off.
    #[test]
    fn arbitrary_op_sequences_equivalent(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec((0usize..2, 0usize..4), 1..24),
    ) {
        let run = |fast: bool| -> Snapshot {
            let mut y = YcsbBionic::build(BionicConfig::small(2), YcsbSpec::tiny(), 4);
            y.machine.set_fast_forward(fast);
            let kinds = [
                YcsbKind::ReadLocal,
                YcsbKind::UpdateLocal,
                YcsbKind::Scan,
                YcsbKind::ReadHomed,
            ];
            let size = kinds.iter().map(|&k| y.block_size(k)).max().unwrap();
            let mut pools: Vec<BlockPool> = (0..2)
                .map(|w| BlockPool::new(&mut y.machine, w, ops.len(), size))
                .collect();
            let mut rng = YcsbBionic::rng(seed);
            for &(w, k) in &ops {
                let blk = pools[w].take();
                y.submit_txn(w, blk, kinds[k], &mut rng);
            }
            y.machine.run_to_quiescence();
            snapshot(&y.machine)
        };
        let strict = run(false);
        let fast = run(true);
        prop_assert_eq!(strict.now, fast.now, "cycle counts diverge");
        prop_assert_eq!(strict.dram_image, fast.dram_image, "DRAM images diverge");
        prop_assert_eq!(strict, fast);
    }
}
