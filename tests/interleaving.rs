//! System-level tests of transaction interleaving (paper §4.5):
//! equivalence with serial execution on conflict-free inputs, and the
//! speedup it exists to provide.

use bionicdb::{BionicConfig, ExecMode};
use bionicdb_workloads::ycsb::{YcsbBionic, YcsbKind};
use bionicdb_workloads::YcsbSpec;

fn build(mode: ExecMode, ops: usize) -> YcsbBionic {
    let cfg = BionicConfig {
        workers: 2,
        mode,
        ..BionicConfig::small(2)
    };
    let spec = YcsbSpec {
        records_per_partition: 4_000,
        payload_len: 64,
        ops_per_txn: ops,
        ..YcsbSpec::default()
    };
    YcsbBionic::build(cfg, spec, 12)
}

/// Run `n` read transactions per worker; returns (cycles, committed).
fn run(y: &mut YcsbBionic, n: usize, seed: u64) -> (u64, u64) {
    let size = y.block_size(YcsbKind::ReadLocal);
    let mut rng = YcsbBionic::rng(seed);
    let start = y.machine.now();
    let s0 = y.machine.stats().committed;
    for w in 0..y.machine.num_workers() {
        for _ in 0..n {
            let blk = y.machine.alloc_block(w, size);
            y.submit_txn(w, blk, YcsbKind::ReadLocal, &mut rng);
        }
    }
    y.machine.run_to_quiescence_limit(1 << 28);
    (y.machine.now() - start, y.machine.stats().committed - s0)
}

#[test]
fn interleaved_and_serial_commit_identical_read_workloads() {
    let mut inter = build(ExecMode::Interleaved, 4);
    let mut serial = build(ExecMode::Serial, 4);
    let (_, ci) = run(&mut inter, 50, 7);
    let (_, cs) = run(&mut serial, 50, 7);
    assert_eq!(ci, 100);
    assert_eq!(cs, 100);
}

#[test]
fn interleaving_speeds_up_single_access_transactions() {
    // Paper Fig. 12a: the win is largest for single-access transactions
    // (serial execution leaves the coprocessor idle during each round
    // trip; interleaving overlaps them).
    let mut inter = build(ExecMode::Interleaved, 1);
    let mut serial = build(ExecMode::Serial, 1);
    let (ti, _) = run(&mut inter, 300, 9);
    let (ts, _) = run(&mut serial, 300, 9);
    let speedup = ts as f64 / ti as f64;
    assert!(
        speedup > 1.4,
        "interleaving speedup for 1-op txns: {speedup:.2}x"
    );
}

#[test]
fn interleaving_benefit_shrinks_with_intra_txn_parallelism() {
    // With 32 independent accesses per transaction, index pipelining
    // already fills the coprocessor; interleaving adds little
    // (paper Fig. 12a converges).
    let mut inter = build(ExecMode::Interleaved, 32);
    let mut serial = build(ExecMode::Serial, 32);
    let (ti, _) = run(&mut inter, 60, 11);
    let (ts, _) = run(&mut serial, 60, 11);
    let speedup = ts as f64 / ti as f64;
    assert!(
        (0.75..1.35).contains(&speedup),
        "large-footprint speedup should be near 1x, got {speedup:.2}x"
    );
}

#[test]
fn context_switches_happen_only_when_interleaving() {
    let mut inter = build(ExecMode::Interleaved, 1);
    run(&mut inter, 40, 13);
    let switches_inter: u64 = (0..2)
        .map(|w| inter.machine.softcore_stats(w).switches)
        .sum();
    let mut serial = build(ExecMode::Serial, 1);
    run(&mut serial, 40, 13);
    let switches_serial: u64 = (0..2)
        .map(|w| serial.machine.softcore_stats(w).switches)
        .sum();
    // Serial mode still "switches" into the commit phase once per txn;
    // interleaving adds the logic-phase yields on top.
    assert!(
        switches_inter > switches_serial,
        "interleaving must context-switch more: {switches_inter} vs {switches_serial}"
    );
}
