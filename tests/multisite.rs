//! Cross-partition (multisite) transaction integration tests: on-chip
//! message passing, background requests, remote writes and consistency.

use bionicdb::{
    asm::assemble, BionicConfig, BlockStatus, FaultPlan, NocRetryConfig, RetryBudget,
    SystemBuilder, TableMeta, Topology,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Assert the interconnect's accounting identity: every accepted send is
/// delivered, dropped by an injected fault, or still in flight.
fn assert_noc_conservation(db: &bionicdb::Machine) {
    let s = db.noc().stats();
    assert_eq!(
        s.sent,
        s.delivered + s.dropped + db.noc().in_flight(),
        "NoC conservation: sent == delivered + dropped + in_flight ({s:?})"
    );
}

const TRANSFER: &str = r#"
proc transfer
logic:
    load g5, [blk+16]
    update 0, 0, c0, home=g5     ; debit, possibly remote
    load g6, [blk+24]
    update 0, 8, c1, home=g6     ; credit, possibly remote
commit:
    ret g0, c0
    cmp g0, 0
    blt abort
    ret g1, c1
    cmp g1, 0
    blt abort
    load g2, [blk+32]
    load g3, [g0+72]
    sub g3, g2
    store g3, [g0+72]
    load g4, [g1+72]
    add g4, g2
    store g4, [g1+72]
    getts g7
    store g7, [g0+8]
    store g7, [g1+8]
    mov g8, 0
    store g8, [g0+24]
    store g8, [g1+24]
    commit
abort:
    ret g0, c0
    cmp g0, 0
    blt s1
    mov g8, 0
    store g8, [g0+24]
s1:
    ret g1, c1
    cmp g1, 0
    blt s2
    mov g8, 0
    store g8, [g1+24]
s2:
    abort
"#;

fn build(
    workers: usize,
    topology: Topology,
) -> (bionicdb::Machine, bionicdb::TableId, bionicdb::ProcId) {
    let mut b = SystemBuilder::new(BionicConfig {
        topology,
        ..BionicConfig::small(workers)
    });
    let t = b.table(TableMeta::hash("accounts", 8, 8, 1 << 10));
    let p = b.proc(assemble(TRANSFER).unwrap());
    (b.build(), t, p)
}

/// Run a random cross-partition transfer workload and verify global
/// conservation of money under retries.
fn conservation_run(topology: Topology) {
    let workers = 4;
    let accounts_per = 16u64;
    let (mut db, t, p) = build(workers, topology);
    for w in 0..workers {
        for k in 0..accounts_per {
            // Keys are partition-local; initial balance 1000 each.
            db.loader(w)
                .insert(t, &k.to_le_bytes(), &1_000u64.to_le_bytes());
        }
    }
    let total0: u64 = (0..workers)
        .map(|w| {
            (0..accounts_per)
                .map(|k| {
                    let a = db.loader(w).lookup(t, &k.to_le_bytes()).unwrap();
                    u64::from_le_bytes(db.loader(w).payload(t, a)[..8].try_into().unwrap())
                })
                .sum::<u64>()
        })
        .sum();

    let mut rng = SmallRng::seed_from_u64(5);
    let mut blocks = Vec::new();
    for _ in 0..40 {
        let origin = rng.gen_range(0..workers);
        let from_w = rng.gen_range(0..workers) as u64;
        let to_w = rng.gen_range(0..workers) as u64;
        let from_k = rng.gen_range(0..accounts_per);
        let mut to_k = rng.gen_range(0..accounts_per);
        if from_w == to_w && to_k == from_k {
            to_k = (to_k + 1) % accounts_per;
        }
        let blk = db.alloc_block(origin, 160);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, from_k);
        db.write_block_u64(blk, 8, to_k);
        db.write_block_u64(blk, 16, from_w);
        db.write_block_u64(blk, 24, to_w);
        db.write_block_u64(blk, 32, rng.gen_range(1..50));
        db.submit(origin, blk);
        blocks.push((origin, blk));
    }
    db.run_to_quiescence_limit(1 << 28);
    let out = db.retry_to_completion(
        &blocks,
        RetryBudget {
            max_attempts: 128,
            backoff_cycles: 0,
        },
        1 << 28,
    );
    assert!(out.all_committed(), "retries converge: {out:?}");

    let total1: u64 = (0..workers)
        .map(|w| {
            (0..accounts_per)
                .map(|k| {
                    let a = db.loader(w).lookup(t, &k.to_le_bytes()).unwrap();
                    u64::from_le_bytes(db.loader(w).payload(t, a)[..8].try_into().unwrap())
                })
                .sum::<u64>()
        })
        .sum();
    assert_eq!(total0, total1, "money conserved across partitions");
    assert!(
        db.noc().stats().sent > 0,
        "some transfers crossed partitions"
    );
    assert_eq!(db.noc().stats().dropped, 0, "no faults were injected");
    assert_noc_conservation(&db);
}

#[test]
fn crossbar_transfers_conserve_money() {
    conservation_run(Topology::Crossbar);
}

#[test]
fn ring_transfers_conserve_money() {
    conservation_run(Topology::Ring);
}

#[test]
fn transfers_survive_injected_message_loss() {
    // Same transfer workload, but the interconnect silently eats a handful
    // of messages. With the retry glue armed, every loss is absorbed —
    // retransmitted requests are deduplicated at the home worker, lost
    // responses are replayed from its completed-cache — and the run ends
    // exactly where the lossless run ends: everything commits, money is
    // conserved, and the NoC accounting identity still balances.
    let workers = 4;
    let accounts_per = 16u64;
    let mut b = SystemBuilder::new(BionicConfig {
        noc_retry: Some(NocRetryConfig {
            timeout_cycles: 2048,
            max_attempts: 6,
        }),
        ..BionicConfig::small(workers)
    });
    let t = b.table(TableMeta::hash("accounts", 8, 8, 1 << 10));
    let p = b.proc(assemble(TRANSFER).unwrap());
    let mut db = b.build();
    let mut plan = FaultPlan::none();
    for n in [2u64, 5, 9, 17] {
        plan = plan.drop_nth_send(n);
    }
    db.set_fault_plan(plan);

    for w in 0..workers {
        for k in 0..accounts_per {
            db.loader(w)
                .insert(t, &k.to_le_bytes(), &1_000u64.to_le_bytes());
        }
    }
    let mut rng = SmallRng::seed_from_u64(5);
    let mut blocks = Vec::new();
    for _ in 0..24 {
        let origin = rng.gen_range(0..workers);
        let from_w = rng.gen_range(0..workers) as u64;
        let to_w = rng.gen_range(0..workers) as u64;
        let from_k = rng.gen_range(0..accounts_per);
        let mut to_k = rng.gen_range(0..accounts_per);
        if from_w == to_w && to_k == from_k {
            to_k = (to_k + 1) % accounts_per;
        }
        let blk = db.alloc_block(origin, 160);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, from_k);
        db.write_block_u64(blk, 8, to_k);
        db.write_block_u64(blk, 16, from_w);
        db.write_block_u64(blk, 24, to_w);
        db.write_block_u64(blk, 32, rng.gen_range(1..50));
        db.submit(origin, blk);
        blocks.push((origin, blk));
    }
    db.run_to_quiescence_limit(1 << 28);
    let out = db.retry_to_completion(
        &blocks,
        RetryBudget {
            max_attempts: 128,
            backoff_cycles: 0,
        },
        1 << 28,
    );
    assert!(out.all_committed(), "losses absorbed by retry: {out:?}");

    let total: u64 = (0..workers)
        .map(|w| {
            (0..accounts_per)
                .map(|k| {
                    let a = db.loader(w).lookup(t, &k.to_le_bytes()).unwrap();
                    u64::from_le_bytes(db.loader(w).payload(t, a)[..8].try_into().unwrap())
                })
                .sum::<u64>()
        })
        .sum();
    assert_eq!(total, workers as u64 * accounts_per * 1_000, "money conserved");
    let s = db.noc().stats();
    assert!(s.dropped >= 1, "the fault plan actually fired: {s:?}");
    assert_noc_conservation(&db);
    assert_eq!(db.noc().in_flight(), 0, "quiescent interconnect");
}

#[test]
fn remote_request_latency_is_on_chip_scale() {
    // A purely remote read-only transaction completes with only a handful
    // of extra cycles over the local one — communication is 6 cycles per
    // op pair, dwarfed by the index work itself.
    let (mut db, t, p) = build(2, Topology::Crossbar);
    for w in 0..2 {
        for k in 0..4u64 {
            db.loader(w)
                .insert(t, &k.to_le_bytes(), &1_000u64.to_le_bytes());
        }
    }
    // Local transfer on worker 0.
    let run = |db: &mut bionicdb::Machine, from_w: u64, to_w: u64| {
        let start = db.now();
        let blk = db.alloc_block(0, 160);
        db.init_block(blk, p);
        db.write_block_u64(blk, 0, 0);
        db.write_block_u64(blk, 8, 1);
        db.write_block_u64(blk, 16, from_w);
        db.write_block_u64(blk, 24, to_w);
        db.write_block_u64(blk, 32, 1);
        db.submit(0, blk);
        db.run_to_quiescence_limit(1 << 24);
        assert!(db.block_status(blk).is_committed());
        db.now() - start
    };
    let local = run(&mut db, 0, 0);
    let remote = run(&mut db, 1, 1);
    assert!(
        remote < local + 200,
        "remote ops cost on-chip latency, not a software round trip: local={local} remote={remote}"
    );
}
