//! The assembler/disassembler round-trips the *real* generated stored
//! procedures — including the several-hundred-instruction TPC-C NewOrder
//! with its unrolled loops, branches and three sections.

use bionicdb::{BionicConfig, SystemBuilder};
use bionicdb_softcore::asm::{assemble, disassemble};
use bionicdb_softcore::isa::{decode_program, encode_program};
use bionicdb_workloads::tpcc::{build_neworder_proc, build_payment_proc, register_tables};
use bionicdb_workloads::ycsb::{build_kv_insert_proc, build_read_proc, build_scan_proc};
use bionicdb_workloads::TpccSpec;

fn all_generated_procs() -> Vec<bionicdb_softcore::Procedure> {
    let mut b = SystemBuilder::new(BionicConfig::small(1));
    let t = register_tables(&mut b, &TpccSpec::tiny());
    vec![
        build_neworder_proc(&t, false),
        build_neworder_proc(&t, true),
        build_payment_proc(&t, false),
        build_payment_proc(&t, true),
        build_read_proc(t.customer, 16, false),
        build_read_proc(t.customer, 16, true),
        build_kv_insert_proc(t.customer, 60, 24),
        build_scan_proc(t.customer, 50),
    ]
}

#[test]
fn disassembler_round_trips_every_generated_procedure() {
    for p in all_generated_procs() {
        let text = disassemble(&p);
        let p2 = assemble(&text)
            .unwrap_or_else(|e| panic!("{}: reassembly failed: {e}\n{text}", p.name));
        assert_eq!(p.code, p2.code, "{}", p.name);
        assert_eq!(p.commit_entry, p2.commit_entry, "{}", p.name);
        assert_eq!(p.abort_entry, p2.abort_entry, "{}", p.name);
        assert_eq!(
            (p.gp_count, p.cp_count),
            (p2.gp_count, p2.cp_count),
            "{}",
            p.name
        );
    }
}

#[test]
fn wire_format_round_trips_every_generated_procedure() {
    for p in all_generated_procs() {
        let bytes = encode_program(&p.code);
        let decoded = decode_program(&bytes).unwrap();
        assert_eq!(decoded, p.code, "{}", p.name);
        // The NewOrder body is genuinely large — the catalogue upload
        // format must handle it.
        if p.name.starts_with("tpcc_neworder") {
            assert!(p.code.len() > 300, "{} has {} insts", p.name, p.code.len());
        }
    }
}

#[test]
fn generated_procedures_all_validate() {
    for p in all_generated_procs() {
        p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
    }
}
