//! Minimal, dependency-free stand-in for the `rand` 0.8 API surface this
//! workspace uses, vendored so the build needs no registry access.
//!
//! Provides `rngs::SmallRng` (xoshiro256++ seeded via splitmix64, the same
//! construction rand's `SmallRng` uses on 64-bit targets), the `Rng` /
//! `SeedableRng` traits, and `gen` / `gen_range` / `gen_bool`.
//!
//! The stream is deterministic for a given seed but is NOT bit-compatible
//! with upstream `rand`; everything in this repo that depends on random
//! values derives its expectations from the same stream, so only internal
//! determinism matters.

pub mod rngs {
    /// Splitmix64: used to expand a 64-bit seed into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution in upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-domain 64-bit range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (only the `seed_from_u64` entry point is used
/// in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::SmallRng::from_u64(state)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // gen_bool extremes.
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
