//! Minimal stand-in for the `criterion` API surface this workspace uses,
//! vendored so benches build offline. It times each benchmark with a short
//! warm-up followed by a fixed measurement window and prints mean
//! nanoseconds per iteration — no statistics, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim runs setup per batch of 1
/// either way, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(700);

/// Drives one benchmark body.
pub struct Bencher {
    /// (iterations, elapsed) accumulated over the measurement window.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn run_phase(mut body: impl FnMut(), window: Duration) -> (u64, Duration) {
        let mut iters = 0u64;
        let start = Instant::now();
        let mut elapsed = Duration::ZERO;
        while elapsed < window {
            // Batches keep clock overhead out of the loop for fast bodies.
            let batch = if iters < 64 { 1 } else { 16 };
            for _ in 0..batch {
                body();
            }
            iters += batch;
            elapsed = start.elapsed();
        }
        (iters, elapsed)
    }

    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        Self::run_phase(
            || {
                std_black_box(body());
            },
            WARMUP,
        );
        self.result = Some(Self::run_phase(
            || {
                std_black_box(body());
            },
            MEASURE,
        ));
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Setup runs outside the timed body would require per-iteration
        // clock reads; for this shim the setup cost is included, which is
        // acceptable for regression tracking (it is constant per bench).
        Self::run_phase(
            || {
                std_black_box(routine(setup()));
            },
            WARMUP,
        );
        self.result = Some(Self::run_phase(
            || {
                std_black_box(routine(setup()));
            },
            MEASURE,
        ));
    }
}

fn report(name: &str, result: Option<(u64, Duration)>) {
    match result {
        Some((iters, elapsed)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<40} time: [{ns:12.1} ns/iter]  ({iters} iters)");
        }
        _ => println!("{name:<40} time: [no measurement]"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { result: None };
        body(&mut b);
        report(name, b.result);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group; benches report as `group/name`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { result: None };
        body(&mut b);
        report(&format!("{}/{}", self.prefix, name), b.result);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
