//! Minimal stand-in for the `proptest` API surface this workspace uses,
//! vendored so tests build offline.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` random
//! cases (default 64, override with `PROPTEST_CASES`). The RNG is seeded
//! deterministically from the test name (override with `PROPTEST_SEED`),
//! so failures reproduce. On failure the generated inputs are printed.
//! There is **no shrinking** — the failing case prints as generated.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The per-case random source handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn from_seed_u64(seed: u64) -> TestRng {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.inner.gen_range(0..n)
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runtime support for the `proptest!` macro — not part of the public
/// upstream API.
pub mod runtime {
    use super::{fnv1a, TestRng};

    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        fnv1a(test_name.as_bytes())
    }

    pub fn cases_override() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    pub fn case_rng(seed: u64, case: u32) -> TestRng {
        // Decorrelate cases while keeping the whole run a function of the
        // base seed.
        TestRng::from_seed_u64(seed ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)))
    }
}

/// Test-runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests. Unlike upstream proptest a
/// strategy here is just a random generator — there is no value tree and
/// no shrinking.
pub trait Strategy {
    type Value: Debug;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Object-safe adapter so heterogeneous strategies can share one element
/// type (used by `prop_oneof!`).
trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn DynStrategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.inner.dyn_new_value(rng)
    }
}

/// `.prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `.prop_filter` combinator (rejection sampling with a retry cap).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// A strategy producing a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII; occasionally any scalar value.
        if rng.below(4) == 0 {
            loop {
                if let Some(c) = char::from_u32((rng.next_u64() & 0x10_ffff) as u32) {
                    return c;
                }
            }
        } else {
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($a:ident),+))*) => {$(
        impl<$($a: Arbitrary),+> Arbitrary for ($($a,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($a::arbitrary(rng),)+)
            }
        }
    )*};
}
impl_arbitrary_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Size bounds for collection strategies (`len` in `[lo, hi)`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `target`; bound the
            // attempts so generation always terminates.
            for _ in 0..target.saturating_mul(20).max(64) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    /// Upstream exposes the crate under the alias `prop` in the prelude
    /// (e.g. `prop::sample::Index`).
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($arm)),+];
        $crate::OneOf { arms }
    }};
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<V> {
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::runtime::cases_override().unwrap_or(config.cases);
            let seed = $crate::runtime::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let mut rng = $crate::runtime::case_rng(seed, case);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let repro = format!(
                    concat!("proptest case {}/{} (seed {}) failed:", $(concat!("\n  ", stringify!($arg), " = {:?}"),)+),
                    case + 1, cases, seed, $(&$arg),+
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("{}", repro);
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Toy {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0i64..=4, pair in any::<(u64, u64)>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0..=4).contains(&y));
            let _ = pair;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..10).prop_map(Toy::A),
            Just(Toy::B),
        ]) {
            match v {
                Toy::A(n) => prop_assert!(n < 10),
                Toy::B => {}
            }
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..100, 2..8),
            s in prop::collection::btree_set(0u64..1000, 1..10),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
            prop_assert!(ix.index(v.len()) < v.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::runtime::case_rng(99, 0);
        let mut b = crate::runtime::case_rng(99, 0);
        let s = crate::collection::vec(0u64..1000, 3..9);
        assert_eq!(
            crate::Strategy::new_value(&s, &mut a),
            crate::Strategy::new_value(&s, &mut b)
        );
    }
}
