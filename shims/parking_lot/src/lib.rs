//! Minimal stand-in for the `parking_lot` API surface this workspace uses,
//! built on `std::sync`. Matches parking_lot's non-poisoning semantics: a
//! panic while a guard is held does not poison the lock for later users.

use std::sync::{self, PoisonError};

/// A reader-writer lock with parking_lot's `read()` / `write()` signatures
/// (no `Result`; poisoning from a panicking holder is ignored).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's `lock()` signature (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
