#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
# Uses --locked throughout: the committed Cargo.lock pins the vendored shim
# versions and the build must work with no registry access (see
# shims/README.md). Run from the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, locked) =="
cargo build --workspace --release --locked

echo "== tests =="
cargo test --workspace --locked --quiet

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "== chaos smoke (fixed-seed fault matrix) =="
cargo run --release --locked -p bionicdb-bench --bin chaos -- --smoke

echo "== stats smoke (fixed-seed YCSB: determinism, schema, trace inertness) =="
cargo run --release --locked -p bionicdb-bench --bin statscheck -- --json target/stats_smoke.json

echo "== parcheck (serial vs global/matrix lookahead at 1/2/4 sim threads: byte-identical reports) =="
cargo run --release --locked -p bionicdb-bench --bin simperf -- --par --quick --out target/parsim_smoke.json

echo "== workloadcheck (driver bit-identity vs pre-refactor goldens + SmallBank ABI smoke) =="
cargo run --release --locked -p bionicdb-bench --bin workloadcheck

echo "== servecheck (virtual-time serving engine vs committed goldens, byte-for-byte) =="
cargo run --release --locked -p bionicdb-bench --bin servecheck

echo "== saturate (graceful-degradation claim: controlled >= 85% of peak at 2x, baseline < 50%) =="
cargo run --release --locked -p bionicdb-bench --bin saturate -- --quick --json BENCH_serve.json

echo "== benchdiff (full par study -> append results/bench_history.jsonl, gate vs baseline) =="
cargo run --release --locked -p bionicdb-bench --bin simperf -- --par --out BENCH_parsim.json
cargo run --release --locked -p bionicdb-bench --bin benchdiff

echo "== dashboard (static HTML from the bench history) =="
cargo run --release --locked -p bionicdb-bench --bin dashboard

echo "All checks passed."
