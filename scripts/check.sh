#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
# Uses --locked throughout: the committed Cargo.lock pins the vendored shim
# versions and the build must work with no registry access (see
# shims/README.md). Run from the repo root.
#
# Each gate is timed; a per-gate elapsed-time summary prints at the end
# (and on failure, for the gates that ran), so slow gates are visible
# instead of anecdotal.

set -euo pipefail
cd "$(dirname "$0")/.."

GATE_NAMES=()
GATE_SECS=()

summary() {
    echo
    echo "== per-gate elapsed time =="
    local i total=0
    for i in "${!GATE_NAMES[@]}"; do
        printf '%8ss  %s\n' "${GATE_SECS[$i]}" "${GATE_NAMES[$i]}"
        total=$((total + GATE_SECS[i]))
    done
    printf '%8ss  total\n' "$total"
}
trap summary EXIT

gate() {
    local name="$1"
    shift
    echo "== $name =="
    local t0=$SECONDS
    "$@"
    GATE_NAMES+=("$name")
    GATE_SECS+=("$((SECONDS - t0))")
}

gate "build (release, locked)" \
    cargo build --workspace --release --locked

gate "tests" \
    cargo test --workspace --locked --quiet

gate "clippy (deny warnings)" \
    cargo clippy --workspace --all-targets --locked -- -D warnings

gate "chaos smoke (fixed-seed fault matrix incl. fleet-barrier crash)" \
    cargo run --release --locked -p bionicdb-bench --bin chaos -- --smoke

gate "fleetcheck (2-chip fleet vs in-process: byte-identical reports, shm + socket)" \
    cargo run --release --locked -p bionicdb-bench --bin fleetcheck

gate "stats smoke (fixed-seed YCSB: determinism, schema, trace inertness)" \
    cargo run --release --locked -p bionicdb-bench --bin statscheck -- --json target/stats_smoke.json

gate "parcheck (serial vs global/matrix lookahead at 1/2/4 sim threads: byte-identical reports)" \
    cargo run --release --locked -p bionicdb-bench --bin simperf -- --par --quick --out target/parsim_smoke.json

gate "workloadcheck (driver bit-identity vs pre-refactor goldens + SmallBank ABI smoke)" \
    cargo run --release --locked -p bionicdb-bench --bin workloadcheck

gate "servecheck (Silo + hardware serving engines vs committed goldens, byte-for-byte)" \
    cargo run --release --locked -p bionicdb-bench --bin servecheck

gate "batchcheck (batch mode-off bit-inertness + end-to-end smoke + quick-sweep golden)" \
    cargo run --release --locked -p bionicdb-bench --bin batchcheck

gate "saturate (graceful-degradation claim: controlled >= 85% of peak at 2x, baseline < 50%)" \
    cargo run --release --locked -p bionicdb-bench --bin saturate -- --quick --json BENCH_serve.json

gate "saturate --engine hw (open-loop serving on the cycle-accurate machine: graceful degradation + batched admission beats unbatched on chained-hash ycsb_c)" \
    cargo run --release --locked -p bionicdb-bench --bin saturate -- --quick --engine hw --json BENCH_serve_hw.json

gate "parsim full study (append results/bench_history.jsonl)" \
    cargo run --release --locked -p bionicdb-bench --bin simperf -- --par --out BENCH_parsim.json

gate "batchsweep full study (2x-at-width-8 assertion, append history)" \
    cargo run --release --locked -p bionicdb-bench --bin batchsweep -- --out BENCH_batch.json

gate "benchdiff (gate vs recorded baseline)" \
    cargo run --release --locked -p bionicdb-bench --bin benchdiff

gate "dashboard (static HTML from the bench history)" \
    cargo run --release --locked -p bionicdb-bench --bin dashboard

echo
echo "All checks passed."
